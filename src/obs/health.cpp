#include "obs/health.hpp"

#include <algorithm>
#include <sstream>

namespace csdml::obs {

namespace {

std::uint64_t counter(const MetricsSnapshot& snapshot,
                      const std::string& name) {
  for (const auto& [key, value] : snapshot.counters) {
    if (key == name) return value;
  }
  return 0;
}

const HistogramSnapshot* histogram(const MetricsSnapshot& snapshot,
                                   const std::string& name) {
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

/// Fraction of observations <= `limit`, interpolating inside the bucket
/// that straddles it (the same estimate percentile() inverts).
double fraction_within(const HistogramSnapshot& h, double limit) {
  if (h.count == 0) return 1.0;
  if (limit >= h.max) return 1.0;
  if (limit < h.min) return 0.0;
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    const double lower = i == 0 ? h.min : h.bounds[i - 1];
    const double upper = i < h.bounds.size() ? h.bounds[i] : h.max;
    if (upper <= limit) {
      below += h.buckets[i];
      continue;
    }
    if (lower < limit && upper > lower) {
      const double portion = (limit - lower) / (upper - lower);
      below += static_cast<std::uint64_t>(
          static_cast<double>(h.buckets[i]) * std::clamp(portion, 0.0, 1.0));
    }
    break;
  }
  return static_cast<double>(below) / static_cast<double>(h.count);
}

void json_string(std::ostream& out, const std::string& value) {
  out << '"';
  for (const char c : value) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

SloConfig board_slo(const std::string& metrics_prefix, const SloConfig& base) {
  SloConfig config = base;
  config.latency_histogram = metrics_prefix + ".ingest_to_verdict_us";
  return config;
}

const char* health_verdict_name(HealthVerdict verdict) {
  switch (verdict) {
    case HealthVerdict::Ok: return "ok";
    case HealthVerdict::Degraded: return "degraded";
    case HealthVerdict::Unhealthy: return "unhealthy";
  }
  return "unknown";
}

HealthReport evaluate_health(const MetricsSnapshot& snapshot, bool csd_healthy,
                             const SloConfig& config) {
  HealthReport report;
  report.csd_healthy = csd_healthy;
  report.classifications = counter(snapshot, "detector.classifications");
  report.deferred = counter(snapshot, "detector.degraded_classifications");
  report.fallback_serves = counter(snapshot, "engine.fallback_inferences");
  report.unhealthy_latches = counter(snapshot, "engine.marked_unhealthy");
  report.recoveries = counter(snapshot, "engine.recoveries");

  if (const HistogramSnapshot* h =
          histogram(snapshot, config.latency_histogram)) {
    report.p99_latency_us = h->percentile(0.99);
    if (h->count >= config.min_samples) {
      report.within_slo = fraction_within(*h, config.latency_slo_us);
      const double budget = std::max(1.0 - config.target, 1e-9);
      report.slo_burn = (1.0 - report.within_slo) / budget;
    }
  }

  const double degraded_total =
      static_cast<double>(report.deferred + report.fallback_serves);
  const double served = static_cast<double>(report.classifications) +
                        static_cast<double>(report.deferred);
  const double degraded_ratio = served > 0.0 ? degraded_total / served : 0.0;

  if (!csd_healthy) {
    report.reasons.push_back("csd_unhealthy_latched");
  }
  if (report.slo_burn >= config.unhealthy_burn) {
    report.reasons.push_back("latency_slo_burn_critical");
  } else if (report.slo_burn >= 1.0) {
    report.reasons.push_back("latency_slo_burning");
  }
  if (degraded_ratio > config.degraded_serve_budget) {
    report.reasons.push_back("degraded_serve_budget_exceeded");
  }

  if (!csd_healthy || report.slo_burn >= config.unhealthy_burn) {
    report.verdict = HealthVerdict::Unhealthy;
  } else if (!report.reasons.empty()) {
    report.verdict = HealthVerdict::Degraded;
  } else {
    report.verdict = HealthVerdict::Ok;
  }
  return report;
}

std::string HealthReport::to_text() const {
  std::ostringstream out;
  out << "health: " << health_verdict_name(verdict)
      << "  (csd " << (csd_healthy ? "healthy" : "UNHEALTHY") << ")\n";
  out << "  slo burn " << slo_burn << "  within-slo " << within_slo
      << "  p99 " << p99_latency_us << " us\n";
  out << "  classifications " << classifications << "  deferred " << deferred
      << "  fallback " << fallback_serves << "  latches " << unhealthy_latches
      << "  recoveries " << recoveries << "\n";
  if (!reasons.empty()) {
    out << "  reasons:";
    for (const std::string& reason : reasons) out << ' ' << reason;
    out << "\n";
  }
  return out.str();
}

std::string HealthReport::to_json() const {
  std::ostringstream out;
  out.precision(12);
  out << "{\"health\":{\"verdict\":";
  json_string(out, health_verdict_name(verdict));
  out << ",\"csd_healthy\":" << (csd_healthy ? "true" : "false")
      << ",\"slo_burn\":" << slo_burn << ",\"within_slo\":" << within_slo
      << ",\"p99_latency_us\":" << p99_latency_us
      << ",\"classifications\":" << classifications
      << ",\"deferred\":" << deferred
      << ",\"fallback_serves\":" << fallback_serves
      << ",\"unhealthy_latches\":" << unhealthy_latches
      << ",\"recoveries\":" << recoveries << ",\"reasons\":[";
  for (std::size_t i = 0; i < reasons.size(); ++i) {
    if (i) out << ',';
    json_string(out, reasons[i]);
  }
  out << "]}}";
  return out.str();
}

}  // namespace csdml::obs
