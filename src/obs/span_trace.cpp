#include "obs/span_trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "common/table.hpp"

namespace csdml::obs {

const std::string* SpanRecord::tag(const std::string& key) const {
  for (const SpanTag& t : tags) {
    if (t.key == key) return &t.value;
  }
  return nullptr;
}

TraceId SpanTrace::begin_trace() {
  if (!enabled_) return 0;
  current_trace_ = next_trace_++;
  return current_trace_;
}

void SpanTrace::end_trace() {
  if (!enabled_) return;
  // Close anything an exception unwind left open: zero-length at start so
  // every record satisfies end >= start.
  while (!stack_.empty()) {
    SpanRecord& span = spans_[stack_.back()];
    span.end = span.start;
    stack_.pop_back();
  }
  current_trace_ = 0;
  if (spans_.size() > retention_) {
    // Drop to half the budget, not just the excess: trimming memmoves the
    // whole buffer, so shedding in large batches keeps the per-trace cost
    // amortized O(1) over campaigns that run for days.
    spans_.erase(spans_.begin(),
                 spans_.begin() + static_cast<std::ptrdiff_t>(
                                      spans_.size() - retention_ / 2));
  }
}

SpanId SpanTrace::begin_span(std::string name, TimePoint start) {
  if (!enabled_) return 0;
  SpanRecord span;
  span.trace_id = current_trace_;
  span.id = next_span_++;
  span.parent = stack_.empty() ? 0 : spans_[stack_.back()].id;
  span.name = std::move(name);
  span.start = start;
  span.end = start;
  stack_.push_back(spans_.size());
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void SpanTrace::end_span(SpanId id, TimePoint end) {
  if (!enabled_ || id == 0) return;
  // Pop everything nested inside `id` (forgiving against a child left open
  // by an error path), then `id` itself.
  while (!stack_.empty()) {
    SpanRecord& span = spans_[stack_.back()];
    span.end = end < span.start ? span.start : end;
    stack_.pop_back();
    if (span.id == id) return;
  }
}

SpanRecord* SpanTrace::find_open(SpanId id) {
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (spans_[*it].id == id) return &spans_[*it];
  }
  return nullptr;
}

void SpanTrace::tag(SpanId id, std::string key, std::string value) {
  if (!enabled_ || id == 0) return;
  if (SpanRecord* span = find_open(id)) {
    span->tags.push_back(SpanTag{std::move(key), std::move(value)});
  }
}

void SpanTrace::tag_current(std::string key, std::string value) {
  if (!enabled_ || stack_.empty()) return;
  spans_[stack_.back()].tags.push_back(
      SpanTag{std::move(key), std::move(value)});
}

void SpanTrace::clear() {
  spans_.clear();
  stack_.clear();
  current_trace_ = 0;
}

std::vector<const SpanRecord*> SpanTrace::trace_spans(TraceId trace_id) const {
  std::vector<const SpanRecord*> out;
  for (const SpanRecord& span : spans_) {
    if (span.trace_id == trace_id) out.push_back(&span);
  }
  return out;
}

std::size_t SpanTrace::trace_count() const {
  std::size_t count = 0;
  TraceId last = 0;
  for (const SpanRecord& span : spans_) {
    if (span.trace_id != 0 && span.trace_id != last) {
      ++count;
      last = span.trace_id;
    }
  }
  return count;
}

std::string SpanTrace::summary() const {
  struct Agg {
    std::size_t count{0};
    Duration total{};
    Duration max{};
  };
  std::map<std::string, Agg> by_name;
  Duration root_total{};
  std::size_t retries = 0, fallbacks = 0, faults = 0, deferred = 0;
  for (const SpanRecord& span : spans_) {
    Agg& agg = by_name[span.name];
    ++agg.count;
    agg.total += span.duration();
    if (span.duration() > agg.max) agg.max = span.duration();
    if (span.parent == 0) root_total += span.duration();
    for (const SpanTag& t : span.tags) {
      if (t.key == "retries") retries += std::strtoull(t.value.c_str(), nullptr, 10);
      if (t.key == "fallback") ++fallbacks;
      if (t.key == "fault") ++faults;
      if (t.key == "deferred") ++deferred;
    }
  }

  std::ostringstream out;
  out << "request spans: " << spans_.size() << " across " << trace_count()
      << " traces (retries=" << retries << " fallbacks=" << fallbacks
      << " faults=" << faults << " deferred=" << deferred << ")\n";
  TextTable table({"span", "count", "total_us", "mean_us", "max_us", "share"});
  for (const auto& [name, agg] : by_name) {
    const double share =
        root_total.picos > 0
            ? static_cast<double>(agg.total.picos) /
                  static_cast<double>(root_total.picos)
            : 0.0;
    table.add_row({name, std::to_string(agg.count),
                   TextTable::num(agg.total.as_microseconds(), 3),
                   TextTable::num(agg.total.as_microseconds() /
                                      static_cast<double>(agg.count ? agg.count : 1),
                                  3),
                   TextTable::num(agg.max.as_microseconds(), 3),
                   TextTable::num(share * 100.0, 1) + "%"});
  }
  table.print(out);
  return out.str();
}

}  // namespace csdml::obs
