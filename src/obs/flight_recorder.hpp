// Black-box flight recorder: a fixed-capacity, allocation-free ring of
// structured events that the hot paths append to for pennies, and that
// ships a JSON post-mortem exactly when something goes wrong.
//
// The detector sits below the host's own monitoring (SHIELD's argument for
// host-independent transparency), so when a fault campaign latches the CSD
// unhealthy, the evidence must come from the device side: the last N
// notable events (faults, retries, fallback serves, latch/recovery
// transitions, deferrals, alerts) are always resident in the ring. Dumps
// trigger on the unhealthy latch, on alert firing, and on crash signals;
// they are written to the path named by CSDML_FLIGHT_DUMP (no env var, no
// dump — recording itself is always on and allocation-free).
//
// Capacity comes from CSDML_FLIGHT_EVENTS (rounded up to a power of two,
// default 1024). Writers claim a slot with one relaxed fetch_add and fill
// fixed-size fields — no locks, no heap — so instrumenting a hot path with
// an event is safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace csdml::obs {

enum class FlightEventKind : std::uint8_t {
  Fault = 0,       ///< injected fault observed (xrt launch, nvme, pcie, nand)
  Retry,           ///< launch retry with backoff
  Fallback,        ///< classification served by the host baseline
  UnhealthyLatch,  ///< retries exhausted; CSD marked unhealthy
  Recovery,        ///< recovery probe succeeded; CSD healthy again
  Deferred,        ///< due classification deferred (no fallback available)
  Alert,           ///< detector alert fired
  WeightUpdate,    ///< CTI hot swap staged a new weight image
  Rollback,        ///< guarded SSD quarantine rollback
  Dump,            ///< the recorder itself dumped (reason in detail)
};

const char* flight_event_kind_name(FlightEventKind kind);

/// One ring slot. Fixed-size character fields keep recording free of
/// allocation; longer strings are truncated, never dropped.
struct FlightEvent {
  std::uint64_t seq{0};        ///< global sequence number (1-based)
  std::int64_t sim_ps{0};      ///< simulated device time of the event
  FlightEventKind kind{FlightEventKind::Fault};
  char component[16]{};        ///< e.g. "engine", "detector", "nvme"
  char detail[48]{};           ///< free-form short description
  std::uint64_t trace_id{0};   ///< owning request trace (0 = none)
  std::uint64_t value{0};      ///< kind-specific payload (count, pid, ...)
};

class FlightRecorder {
 public:
  /// Test constructor with explicit capacity (rounded up to a power of 2).
  explicit FlightRecorder(std::size_t capacity);

  /// Process-global recorder; capacity read from CSDML_FLIGHT_EVENTS once.
  static FlightRecorder& instance();

  std::size_t capacity() const { return capacity_; }
  /// Total events ever recorded (>= retained).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Lock-free, allocation-free append; safe from any thread.
  void record(FlightEventKind kind, const char* component, const char* detail,
              TimePoint sim_time, std::uint64_t trace_id = 0,
              std::uint64_t value = 0) noexcept;

  /// Retained events, oldest first. (Racing writers may be mid-slot; such
  /// slots are skipped — the recorder favours the hot path, not the reader.)
  std::vector<FlightEvent> snapshot() const;

  /// {"flight_recorder":{"reason":...,"capacity":...,"events":[...]}}
  std::string to_json(const std::string& reason) const;
  void dump_to(std::ostream& out, const std::string& reason) const;

  /// Writes the JSON post-mortem to the CSDML_FLIGHT_DUMP path (appends a
  /// Dump event first). Returns false — without side effects beyond the
  /// event — when the env var is unset or the file cannot be written.
  bool auto_dump(const char* reason);

  /// Unconditional dump to an explicit path (crash handler, tests).
  bool dump_to_file(const std::string& path, const std::string& reason);

  /// Installs SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that dump the global
  /// recorder (to CSDML_FLIGHT_DUMP or csdml_flightrec.crash.json) and
  /// re-raise. Idempotent.
  static void install_crash_handler();

  void clear();

 private:
  struct Slot {
    std::atomic<std::uint64_t> commit{0};  ///< seq once fully written
    FlightEvent event;
  };

  std::size_t capacity_;
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace csdml::obs
