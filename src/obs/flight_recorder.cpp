#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/env.hpp"
#include "common/log.hpp"

namespace csdml::obs {

namespace {

constexpr std::size_t kDefaultCapacity = 1024;
constexpr std::size_t kMinCapacity = 16;
constexpr std::size_t kMaxCapacity = 1u << 20;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t capacity_from_env() {
  // Hardened: a garbled knob warns once and uses the default instead of
  // silently clamping to whatever strtol salvaged.
  return static_cast<std::size_t>(env_u64("CSDML_FLIGHT_EVENTS",
                                          kDefaultCapacity, kMinCapacity,
                                          kMaxCapacity));
}

void copy_field(char* dst, std::size_t dst_size, const char* src) {
  if (src == nullptr) {
    dst[0] = '\0';
    return;
  }
  std::strncpy(dst, src, dst_size - 1);
  dst[dst_size - 1] = '\0';
}

void write_json_string(std::ostream& out, const char* value) {
  out << '"';
  for (const char* c = value; *c != '\0'; ++c) {
    switch (*c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << *c;
    }
  }
  out << '"';
}

}  // namespace

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::Fault: return "fault";
    case FlightEventKind::Retry: return "retry";
    case FlightEventKind::Fallback: return "fallback";
    case FlightEventKind::UnhealthyLatch: return "unhealthy_latch";
    case FlightEventKind::Recovery: return "recovery";
    case FlightEventKind::Deferred: return "deferred";
    case FlightEventKind::Alert: return "alert";
    case FlightEventKind::WeightUpdate: return "weight_update";
    case FlightEventKind::Rollback: return "rollback";
    case FlightEventKind::Dump: return "dump";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(round_up_pow2(std::max(capacity, kMinCapacity))),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]) {}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder(capacity_from_env());
  return recorder;
}

void FlightRecorder::record(FlightEventKind kind, const char* component,
                            const char* detail, TimePoint sim_time,
                            std::uint64_t trace_id,
                            std::uint64_t value) noexcept {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(seq - 1) & mask_];
  // Mark the slot in-progress so a concurrent snapshot skips it instead of
  // reading a half-written event.
  slot.commit.store(0, std::memory_order_release);
  slot.event.seq = seq;
  slot.event.sim_ps = sim_time.picos;
  slot.event.kind = kind;
  copy_field(slot.event.component, sizeof(slot.event.component), component);
  copy_field(slot.event.detail, sizeof(slot.event.detail), detail);
  slot.event.trace_id = trace_id;
  slot.event.value = value;
  slot.commit.store(seq, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> events;
  events.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const std::uint64_t commit = slot.commit.load(std::memory_order_acquire);
    if (commit == 0) continue;  // never written, or write in progress
    FlightEvent copy = slot.event;
    if (slot.commit.load(std::memory_order_acquire) != commit) continue;
    copy.seq = commit;  // the committed identity, even mid-overwrite
    events.push_back(copy);
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return events;
}

void FlightRecorder::dump_to(std::ostream& out,
                             const std::string& reason) const {
  const std::vector<FlightEvent> events = snapshot();
  const std::uint64_t total = recorded();
  out << "{\"flight_recorder\":{\"reason\":";
  write_json_string(out, reason.c_str());
  out << ",\"capacity\":" << capacity_ << ",\"recorded\":" << total
      << ",\"dropped\":" << (total > events.size() ? total - events.size() : 0)
      << ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    if (i) out << ',';
    out << "{\"seq\":" << e.seq << ",\"sim_us\":"
        << static_cast<double>(e.sim_ps) / 1e6 << ",\"kind\":";
    write_json_string(out, flight_event_kind_name(e.kind));
    out << ",\"component\":";
    write_json_string(out, e.component);
    out << ",\"detail\":";
    write_json_string(out, e.detail);
    out << ",\"trace_id\":" << e.trace_id << ",\"value\":" << e.value << "}";
  }
  out << "]}}";
}

std::string FlightRecorder::to_json(const std::string& reason) const {
  std::ostringstream out;
  dump_to(out, reason);
  return out.str();
}

bool FlightRecorder::dump_to_file(const std::string& path,
                                  const std::string& reason) {
  record(FlightEventKind::Dump, "flightrec", reason.c_str(), TimePoint{});
  std::ofstream out(path);
  if (!out) {
    CSDML_LOG_WARN("flightrec")
        << "cannot write flight-recorder dump to " << path;
    return false;
  }
  dump_to(out, reason);
  out << '\n';
  CSDML_LOG_INFO("flightrec")
      << "dumped " << recorded() << " events" << kv("reason", reason)
      << kv("path", path);
  return true;
}

bool FlightRecorder::auto_dump(const char* reason) {
  const char* path = std::getenv("CSDML_FLIGHT_DUMP");
  if (path == nullptr || *path == '\0') return false;
  return dump_to_file(path, reason);
}

namespace {

void crash_dump_handler(int sig) {
  // Reset first so a fault inside the dump re-raises straight to default.
  std::signal(sig, SIG_DFL);
  const char* path = std::getenv("CSDML_FLIGHT_DUMP");
  FlightRecorder::instance().dump_to_file(
      path != nullptr && *path != '\0' ? path : "csdml_flightrec.crash.json",
      std::string("signal_") + std::to_string(sig));
  std::raise(sig);
}

}  // namespace

void FlightRecorder::install_crash_handler() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    std::signal(sig, crash_dump_handler);
  }
}

void FlightRecorder::clear() {
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].commit.store(0, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_relaxed);
}

}  // namespace csdml::obs
