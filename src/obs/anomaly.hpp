// Rule- and statistics-based alerting over the fleet time-series, plus
// model-quality drift detection.
//
// Two failure families need automated "something changed" signals:
//
//  * System regressions — a board's p99 stepping up, shed/deferred spiking,
//    throughput collapsing. Declarative AlertRules cover these: static
//    thresholds for absolute SLOs, EWMA z-score for "abnormal vs its own
//    recent past", rate-of-change for cliffs that never cross a static
//    line.
//  * Silent model decay — the verdict-score distribution drifting off the
//    calibration baseline while latency metrics stay green (the
//    generalizability failure Reategui et al. document for block-level
//    ransomware detectors). ScoreDrift keeps a rolling histogram of
//    verdict probabilities and compares it against a frozen baseline with
//    PSI and the KS statistic.
//
// Alerts latch with hysteresis (`fire_for` consecutive violations to
// fire, `clear_for` consecutive clean evaluations to clear) so a flapping
// metric cannot strobe the fleet's drain logic. Every transition
// increments `alerts.*` counters and appends a flight-recorder event;
// critical latches additionally trigger the recorder's auto-dump path so
// the post-mortem is on disk while the regression is still live.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"

namespace csdml::obs {

class FlightRecorder;

enum class AlertSeverity : std::uint8_t { Info = 0, Warning, Critical };

const char* alert_severity_name(AlertSeverity severity);

enum class AlertRuleKind : std::uint8_t {
  AboveThreshold = 0,  ///< value > threshold
  BelowThreshold,      ///< value < threshold
  EwmaZScore,          ///< |value - ewma| / stddev > threshold
  RateOfChange,        ///< |value - previous| / max(|previous|, 1) > threshold
};

const char* alert_rule_kind_name(AlertRuleKind kind);

struct AlertRule {
  std::string id;      ///< stable identifier, e.g. "b0.p99.regression"
  std::string series;  ///< time-series the rule watches
  AlertRuleKind kind{AlertRuleKind::AboveThreshold};
  double threshold{0.0};
  /// Clear condition threshold; defaults to `threshold` when NaN. A lower
  /// clear bar (for AboveThreshold rules) widens the hysteresis band.
  double clear_threshold{std::numeric_limits<double>::quiet_NaN()};
  double ewma_alpha{0.2};       ///< EwmaZScore smoothing factor
  std::uint64_t min_samples{8}; ///< samples before the rule can fire
  std::uint32_t fire_for{2};    ///< consecutive violations to latch
  std::uint32_t clear_for{3};   ///< consecutive clean evals to clear
  AlertSeverity severity{AlertSeverity::Warning};
  int board{-1};  ///< owning board index, -1 for fleet-wide rules
};

/// Live alert state for one rule (or the drift monitor).
struct Alert {
  std::string rule_id;
  AlertSeverity severity{AlertSeverity::Warning};
  int board{-1};
  bool active{false};
  std::int64_t fired_at_us{0};
  std::int64_t cleared_at_us{0};
  double value{0.0};  ///< observed value at the latest evaluation
  std::uint64_t fire_count{0};
  std::string message;
};

/// Verdict-score drift monitor configuration.
struct DriftConfig {
  std::size_t bins{20};        ///< histogram bins over [0, 1]
  std::size_t window{512};     ///< rolling scores retained
  std::size_t min_scores{64};  ///< scores before drift can be evaluated
  double psi_threshold{0.25};  ///< industry rule of thumb: >0.25 = shifted
  double ks_threshold{0.30};
  std::uint32_t fire_for{2};
  std::uint32_t clear_for{3};
  AlertSeverity severity{AlertSeverity::Critical};
};

/// Rolling verdict-score histogram compared against a frozen calibration
/// baseline. Not thread-safe; the engine serialises access.
class ScoreDrift {
 public:
  explicit ScoreDrift(DriftConfig config = {});

  void observe(double score);  ///< score clamped into [0, 1]
  /// Freezes the current rolling histogram as the calibration baseline.
  void calibrate();
  /// Installs an explicit baseline (e.g. from a validation set).
  void set_baseline(const std::vector<double>& scores);
  bool calibrated() const { return !baseline_.empty(); }
  std::uint64_t observed() const { return observed_; }

  /// Population Stability Index of the rolling window vs the baseline
  /// (0 when either side is empty or below min_scores).
  double psi() const;
  /// Kolmogorov–Smirnov statistic (max CDF gap) vs the baseline.
  double ks() const;

  const DriftConfig& config() const { return config_; }

 private:
  std::vector<double> normalized(const std::vector<std::uint64_t>& counts) const;

  DriftConfig config_;
  std::deque<double> window_;
  std::vector<std::uint64_t> counts_;    ///< rolling histogram
  std::vector<std::uint64_t> baseline_;  ///< frozen calibration histogram
  std::uint64_t observed_{0};
};

/// Evaluates every rule (and the drift monitor) against the time-series
/// store, owning latch/clear state. One evaluation per collector tick.
/// Thread-safe: evaluate/observe_score/add_rule may race.
class AlertEngine {
 public:
  /// `recorder` defaults to the process-global flight recorder.
  explicit AlertEngine(FlightRecorder* recorder = nullptr);

  void add_rule(AlertRule rule);
  std::size_t rule_count() const;

  /// Enables verdict-score drift monitoring. Scores observed before this
  /// call are dropped.
  void enable_drift(DriftConfig config = {});
  bool drift_enabled() const;
  /// Feeds one verdict probability to the drift monitor (cheap no-op when
  /// drift is disabled) — called from serving verdict sinks.
  void observe_score(double score);
  /// Freezes the rolling score histogram as the calibration baseline.
  void calibrate_drift();
  void set_drift_baseline(const std::vector<double>& scores);
  double drift_psi() const;
  double drift_ks() const;

  /// Evaluates all rules against `store` at `now_us`; returns alerts that
  /// transitioned (fired or cleared) this round. Updates `alerts.*`
  /// counters, the `alerts.active` gauge, the flight recorder, and — for
  /// critical latches — the auto-dump path.
  std::vector<Alert> evaluate(const TimeSeriesStore& store,
                              std::int64_t now_us);

  /// All alert states, latched and idle, sorted by rule id.
  std::vector<Alert> alerts() const;
  /// Currently latched alerts only.
  std::vector<Alert> active_alerts() const;
  std::size_t active_count() const;
  /// True when a latched alert of at least `min_severity` names `board` —
  /// the hook fleet health sweeps use to drain on alert state.
  bool board_alerted(int board,
                     AlertSeverity min_severity = AlertSeverity::Critical) const;

 private:
  struct RuleState {
    AlertRule rule;
    Alert alert;
    std::uint32_t violation_streak{0};
    std::uint32_t clean_streak{0};
    // EWMA baseline (EwmaZScore) and previous sample (RateOfChange).
    double ewma{0.0};
    double ewma_var{0.0};
    bool ewma_seeded{false};
    double previous{0.0};
    bool has_previous{false};
    std::uint64_t seen_samples{0};  ///< raw samples already consumed
  };

  /// Returns true when the rule's condition is violated for `value`.
  static bool violated(RuleState& state, double value);
  void transition(RuleState& state, bool violation, double value,
                  std::int64_t now_us, std::vector<Alert>& transitions);

  FlightRecorder* recorder_;
  mutable std::mutex mutex_;
  std::map<std::string, RuleState> rules_;
  std::optional<ScoreDrift> drift_;
  RuleState drift_state_;  ///< latch bookkeeping for the drift monitor
};

}  // namespace csdml::obs
