#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace csdml::obs {

namespace {

void write_json_string(std::ostream& out, const std::string& value) {
  out << '"';
  for (const char c : value) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

void write_json_number(std::ostream& out, double value) {
  // JSON has no inf/nan; metrics never legitimately produce them, but a
  // malformed export must not poison downstream tooling.
  if (value != value || value > 1e308 || value < -1e308) {
    out << 0;
    return;
  }
  std::ostringstream s;
  s.precision(12);
  s << value;
  out << s.str();
}

}  // namespace

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  // Exact edges, no interpolation: the extremes are observed values, and a
  // single observation is every percentile of itself.
  if (p <= 0.0) return min;
  if (p >= 1.0) return max;
  if (count == 1 || min == max) return min;
  const double rank = p * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // Rank falls inside bucket i: interpolate between its edges, using the
    // observed extrema for the open-ended first/last buckets.
    const double lower = i == 0 ? min : bounds[i - 1];
    const double upper = i < bounds.size() ? bounds[i] : max;
    const double fraction =
        (rank - before) / static_cast<double>(buckets[i]);
    const double estimate = lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    return std::clamp(estimate, min, max);
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0 && other.bounds.empty()) return;
  if (count == 0 && bounds.empty()) {
    *this = other;
    return;
  }
  CSDML_REQUIRE(bounds == other.bounds,
                "HistogramSnapshot::merge requires identical bounds");
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  if (other.count > 0) {
    if (count == 0 || other.min < min) min = other.min;
    if (count == 0 || other.max > max) max = other.max;
  }
  count += other.count;
  sum += other.sum;
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream out;
  if (!counters.empty() || !gauges.empty()) {
    TextTable table({"metric", "type", "value"});
    for (const auto& [name, value] : counters) {
      table.add_row({name, "counter", std::to_string(value)});
    }
    for (const auto& [name, value] : gauges) {
      table.add_row({name, "gauge", TextTable::num(value, 3)});
    }
    table.print(out);
  }
  if (!histograms.empty()) {
    if (!counters.empty() || !gauges.empty()) out << '\n';
    TextTable table({"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& h : histograms) {
      table.add_row({h.name, std::to_string(h.count), TextTable::num(h.mean(), 4),
                     TextTable::num(h.percentile(0.50), 4),
                     TextTable::num(h.percentile(0.95), 4),
                     TextTable::num(h.percentile(0.99), 4),
                     TextTable::num(h.max, 4)});
    }
    table.print(out);
  }
  return out.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) out << ',';
    write_json_string(out, counters[i].first);
    out << ':' << counters[i].second;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i) out << ',';
    write_json_string(out, gauges[i].first);
    out << ':';
    write_json_number(out, gauges[i].second);
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (i) out << ',';
    write_json_string(out, h.name);
    out << ":{\"count\":" << h.count << ",\"sum\":";
    write_json_number(out, h.sum);
    out << ",\"min\":";
    write_json_number(out, h.min);
    out << ",\"max\":";
    write_json_number(out, h.max);
    out << ",\"mean\":";
    write_json_number(out, h.mean());
    out << ",\"p50\":";
    write_json_number(out, h.percentile(0.50));
    out << ",\"p95\":";
    write_json_number(out, h.percentile(0.95));
    out << ",\"p99\":";
    write_json_number(out, h.percentile(0.99));
    out << ",\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b) out << ',';
      write_json_number(out, h.bounds[b]);
    }
    out << "],\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b) out << ',';
      out << h.buckets[b];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

std::size_t MetricsRegistry::counter_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterStripes;
  return stripe;
}

void MetricsRegistry::add_counter(const std::string& name, std::uint64_t delta) {
  {
    // Fast path: the counter exists (true after the first touch), so a
    // shared lock plus one relaxed add on this thread's stripe suffices.
    std::shared_lock<std::shared_mutex> lock(counters_mutex_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
      it->second->cells[counter_stripe()].value.fetch_add(
          delta, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(counters_mutex_);
  std::unique_ptr<ShardedCounter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<ShardedCounter>();
  slot->cells[counter_stripe()].value.fetch_add(delta,
                                                std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(counters_mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->fold();
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  observe(name, value, default_latency_bounds());
}

void MetricsRegistry::observe(const std::string& name, double value,
                              const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    CSDML_REQUIRE(!bounds.empty(), "histogram needs at least one bound");
    CSDML_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()),
                  "histogram bounds must ascend");
    Histogram h;
    h.bounds = bounds;
    h.buckets.assign(bounds.size() + 1, 0);
    it = histograms_.emplace(name, std::move(h)).first;
  }
  Histogram& h = it->second;
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(h.bounds.begin(), h.bounds.end(), value) -
      h.bounds.begin());
  ++h.buckets[bucket];
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  ++h.count;
  h.sum += value;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::shared_lock<std::shared_mutex> counters_lock(counters_mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      snap.counters.emplace_back(name, counter->fold());
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  snap.gauges.assign(gauges_.begin(), gauges_.end());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s;
    s.name = name;
    s.count = h.count;
    s.sum = h.sum;
    s.min = h.min;
    s.max = h.max;
    s.bounds = h.bounds;
    s.buckets = h.buckets;
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::reset() {
  {
    std::unique_lock<std::shared_mutex> counters_lock(counters_mutex_);
    counters_.clear();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_.clear();
  histograms_.clear();
}

std::vector<double> MetricsRegistry::default_latency_bounds() {
  std::vector<double> bounds;
  for (double b = 1.0 / 16.0; b <= 1048576.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace csdml::obs
