// Chrome-trace / Perfetto export of sim::Trace spans.
//
// Every simulated component already records named spans (kernel launches,
// DMA transfers, flash reads) into its device's sim::Trace; this module
// turns those spans into the Trace Event Format JSON that
// chrome://tracing and ui.perfetto.dev open directly — one pid per
// device, one tid per distinct span name (i.e. per kernel CU) — plus a
// text summary table for terminals.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace csdml::obs {

struct ChromeTraceOptions {
  int pid{0};                            ///< one pid per device
  std::string process_name{"smartssd"};  ///< shown in the trace viewer
};

/// One device's spans plus its identity in a multi-device export.
struct DeviceTrace {
  const sim::Trace* trace{nullptr};
  ChromeTraceOptions options;
};

/// Renders complete ("ph":"X") events, ts/dur in microseconds, with
/// process_name / thread_name metadata. Valid JSON even for empty traces.
std::string to_chrome_trace_json(const sim::Trace& trace,
                                 const ChromeTraceOptions& options = {});

/// Multi-device export: spans of every device in one JSON document.
std::string to_chrome_trace_json(const std::vector<DeviceTrace>& devices);

/// Writes the export to `path`; throws Error when the file cannot open.
void write_chrome_trace_file(const std::string& path, const sim::Trace& trace,
                             const ChromeTraceOptions& options = {});

/// Per-name aggregate table: count, total/mean/max µs, share of the sum.
std::string trace_summary(const sim::Trace& trace);

}  // namespace csdml::obs
