// Chrome-trace / Perfetto export of sim::Trace spans.
//
// Every simulated component already records named spans (kernel launches,
// DMA transfers, flash reads) into its device's sim::Trace; this module
// turns those spans into the Trace Event Format JSON that
// chrome://tracing and ui.perfetto.dev open directly — one pid per
// device, one tid per distinct span name (i.e. per kernel CU) — plus a
// text summary table for terminals.
#pragma once

#include <string>
#include <vector>

#include "obs/span_trace.hpp"
#include "sim/trace.hpp"

namespace csdml::obs {

struct ChromeTraceOptions {
  int pid{0};                            ///< one pid per device
  std::string process_name{"smartssd"};  ///< shown in the trace viewer
};

/// One device's spans plus its identity in a multi-device export.
struct DeviceTrace {
  const sim::Trace* trace{nullptr};
  ChromeTraceOptions options;
};

/// Renders complete ("ph":"X") events, ts/dur in microseconds, with
/// process_name / thread_name metadata. Valid JSON even for empty traces.
std::string to_chrome_trace_json(const sim::Trace& trace,
                                 const ChromeTraceOptions& options = {});

/// Multi-device export: spans of every device in one JSON document.
std::string to_chrome_trace_json(const std::vector<DeviceTrace>& devices);

/// Writes the export to `path`; throws Error when the file cannot open.
void write_chrome_trace_file(const std::string& path, const sim::Trace& trace,
                             const ChromeTraceOptions& options = {});

/// Per-name aggregate table: count, total/mean/max µs, share of the sum.
std::string trace_summary(const sim::Trace& trace);

/// Request-scoped export: the causal SpanTrace rendered as nested "X"
/// events on one "requests" track (pid = options.pid, tid 0), each carrying
/// args.trace_id / args.span_id / args.parent_span plus every span tag —
/// Perfetto shows one classification as a detector→engine→kernel stack
/// instead of the flat per-name lanes.
std::string to_chrome_trace_json(const SpanTrace& spans,
                                 const ChromeTraceOptions& options = {});

/// Combined export: the device's flat lanes (pid = options.pid) plus the
/// request tree (pid = options.pid + 1). This is what the CLI writes when
/// request tracing is on.
std::string to_chrome_trace_json(const sim::Trace& device_trace,
                                 const SpanTrace& spans,
                                 const ChromeTraceOptions& options = {});

/// Writes the combined export to `path`; throws Error when it cannot open.
void write_chrome_trace_file(const std::string& path,
                             const sim::Trace& device_trace,
                             const SpanTrace& spans,
                             const ChromeTraceOptions& options = {});

}  // namespace csdml::obs
