// Request-scoped causal tracing.
//
// The flat sim::Trace answers "how long did kernel_gates run in aggregate";
// it cannot answer "which classification paid for that retry storm". This
// module adds the missing causality: every classification gets a TraceId at
// detector ingress, and each stage it flows through (engine, NVMe/SmartSSD
// transfers, XRT kernel launches) opens a span that records its parent, so
// exports show detector → engine → transfer → kernel as a true tree with
// per-stage latency attribution. Spans carry tags for retries, injected
// faults, fallback serves and degraded-mode transitions, which is exactly
// the evidence a latency-tail postmortem needs (RanStop: the tail, not the
// mean, bounds how much data ransomware encrypts before mitigation).
//
// Thread-safety matches sim::Trace: one recording thread per board (the
// serving thread). Timestamps are simulated device time, the quantity the
// paper measures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace csdml::obs {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

struct SpanTag {
  std::string key;
  std::string value;
};

struct SpanRecord {
  TraceId trace_id{0};
  SpanId id{0};
  SpanId parent{0};  ///< 0 = root span of its trace
  std::string name;
  TimePoint start;
  TimePoint end;
  std::vector<SpanTag> tags;

  Duration duration() const { return end - start; }
  /// Value of the named tag, nullptr when absent.
  const std::string* tag(const std::string& key) const;
};

/// Per-board span collector. Spans nest by call structure: begin_span makes
/// the new span a child of the innermost open one, end_span pops it. A
/// trace groups every span recorded between begin_trace and end_trace under
/// one TraceId. Disabled tracing turns every call into a cheap no-op so the
/// overhead bench can measure instrumentation cost.
class SpanTrace {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Opens a new trace (request scope) and returns its id; 0 if disabled.
  TraceId begin_trace();
  /// Closes the current trace. Spans left open (exception unwinds) are
  /// closed zero-length at their start so the record stays well-formed.
  /// Retention trimming happens here, never mid-trace.
  void end_trace();
  bool in_trace() const { return current_trace_ != 0; }
  TraceId current_trace() const { return current_trace_; }

  /// Opens a span as a child of the innermost open span; 0 if disabled.
  SpanId begin_span(std::string name, TimePoint start);
  /// Closes `id` (and anything left open inside it) at `end`.
  void end_span(SpanId id, TimePoint end);
  /// Attaches a tag to the open span `id` (no-op when unknown/closed).
  void tag(SpanId id, std::string key, std::string value);
  /// Attaches a tag to the innermost open span.
  void tag_current(std::string key, std::string value);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  std::size_t open_depth() const { return stack_.size(); }
  void clear();

  /// Spans belonging to one trace, in recording order.
  std::vector<const SpanRecord*> trace_spans(TraceId trace_id) const;
  /// Number of distinct traces recorded (and not yet trimmed).
  std::size_t trace_count() const;

  /// Per-stage latency attribution table: for every span name, count,
  /// total/mean µs and share of root-span time, plus tagged-event totals
  /// (retries, fallbacks, faults) — the terminal-friendly causal summary.
  std::string summary() const;

  /// Completed spans retained between traces. When the budget is exceeded
  /// at end_trace, the oldest half is shed in one batch (amortized-O(1)
  /// trimming). Keeps week-long campaigns bounded.
  void set_retention(std::size_t max_spans) { retention_ = max_spans; }
  std::size_t retention() const { return retention_; }

 private:
  SpanRecord* find_open(SpanId id);

  bool enabled_{true};
  TraceId current_trace_{0};
  TraceId next_trace_{1};
  SpanId next_span_{1};
  std::size_t retention_{1u << 17};
  std::vector<SpanRecord> spans_;
  std::vector<std::size_t> stack_;  ///< indexes into spans_ of open spans
};

/// One-liner for instrumentation sites: records a closed span (child of the
/// innermost open span) iff a trace is active, so init-time work that runs
/// outside any request stays out of the causal record.
inline void record_span(SpanTrace& spans, std::string name, TimePoint start,
                        TimePoint end) {
  if (!spans.enabled() || !spans.in_trace()) return;
  const SpanId id = spans.begin_span(std::move(name), start);
  spans.end_span(id, end);
}

}  // namespace csdml::obs
