#include "obs/trace_export.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace csdml::obs {

namespace {

void write_json_string(std::ostream& out, const std::string& value) {
  out << '"';
  for (const char c : value) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

/// Microseconds with picosecond precision, fixed notation (the Trace Event
/// Format wants ts/dur in microseconds).
std::string as_us(std::int64_t picos) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.6f",
                static_cast<double>(picos) / 1e6);
  return buffer;
}

void append_device_events(std::ostream& out, const sim::Trace& trace,
                          const ChromeTraceOptions& options, bool& first) {
  const auto emit_separator = [&] {
    if (!first) out << ',';
    first = false;
  };

  emit_separator();
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << options.pid
      << ",\"tid\":0,\"args\":{\"name\":";
  write_json_string(out, options.process_name);
  out << "}}";

  // One tid per distinct span name (per kernel CU), first-seen order.
  std::map<std::string, int> tids;
  for (const std::string& name : trace.names()) {
    const int tid = static_cast<int>(tids.size());
    tids.emplace(name, tid);
    emit_separator();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << options.pid
        << ",\"tid\":" << tid << ",\"args\":{\"name\":";
    write_json_string(out, name);
    out << "}}";
  }

  for (const sim::Span& span : trace.spans()) {
    emit_separator();
    out << "{\"name\":";
    write_json_string(out, span.name);
    out << ",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":" << as_us(span.start.picos)
        << ",\"dur\":" << as_us(span.duration().picos)
        << ",\"pid\":" << options.pid << ",\"tid\":" << tids.at(span.name)
        << "}";
  }
}

/// Nested request spans: one "requests" process, all spans on tid 0 so the
/// viewer stacks them by containment (the simulated clock is sequential, so
/// containment is exactly the parent/child relation).
void append_request_events(std::ostream& out, const SpanTrace& spans,
                           int pid, bool& first) {
  const auto emit_separator = [&] {
    if (!first) out << ',';
    first = false;
  };

  emit_separator();
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":\"requests\"}}";
  emit_separator();
  out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":\"classification spans\"}}";

  for (const SpanRecord& span : spans.spans()) {
    emit_separator();
    out << "{\"name\":";
    write_json_string(out, span.name);
    out << ",\"cat\":\"request\",\"ph\":\"X\",\"ts\":"
        << as_us(span.start.picos) << ",\"dur\":"
        << as_us(span.duration().picos) << ",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"trace_id\":" << span.trace_id
        << ",\"span_id\":" << span.id << ",\"parent_span\":" << span.parent;
    for (const SpanTag& tag : span.tags) {
      out << ',';
      write_json_string(out, tag.key);
      out << ':';
      write_json_string(out, tag.value);
    }
    out << "}}";
  }
}

}  // namespace

std::string to_chrome_trace_json(const sim::Trace& trace,
                                 const ChromeTraceOptions& options) {
  return to_chrome_trace_json({DeviceTrace{&trace, options}});
}

std::string to_chrome_trace_json(const SpanTrace& spans,
                                 const ChromeTraceOptions& options) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  append_request_events(out, spans, options.pid, first);
  out << "]}";
  return out.str();
}

std::string to_chrome_trace_json(const sim::Trace& device_trace,
                                 const SpanTrace& spans,
                                 const ChromeTraceOptions& options) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  append_device_events(out, device_trace, options, first);
  append_request_events(out, spans, options.pid + 1, first);
  out << "]}";
  return out.str();
}

void write_chrome_trace_file(const std::string& path,
                             const sim::Trace& device_trace,
                             const SpanTrace& spans,
                             const ChromeTraceOptions& options) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open trace output file: " + path);
  out << to_chrome_trace_json(device_trace, spans, options) << '\n';
}

std::string to_chrome_trace_json(const std::vector<DeviceTrace>& devices) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const DeviceTrace& device : devices) {
    CSDML_REQUIRE(device.trace != nullptr, "null trace in export");
    append_device_events(out, *device.trace, device.options, first);
  }
  out << "]}";
  return out.str();
}

void write_chrome_trace_file(const std::string& path, const sim::Trace& trace,
                             const ChromeTraceOptions& options) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open trace output file: " + path);
  out << to_chrome_trace_json(trace, options) << '\n';
}

std::string trace_summary(const sim::Trace& trace) {
  Duration all{};
  for (const sim::Span& span : trace.spans()) all += span.duration();

  TextTable table({"span", "count", "total_us", "mean_us", "max_us", "share"});
  for (const std::string& name : trace.names()) {
    const Duration total = trace.total(name);
    const std::size_t count = trace.count(name);
    const double share =
        all.picos > 0
            ? static_cast<double>(total.picos) / static_cast<double>(all.picos)
            : 0.0;
    table.add_row({name, std::to_string(count),
                   TextTable::num(total.as_microseconds(), 3),
                   TextTable::num(total.as_microseconds() /
                                      static_cast<double>(count ? count : 1), 3),
                   TextTable::num(trace.max(name).as_microseconds(), 3),
                   TextTable::num(share * 100.0, 1) + "%"});
  }
  return table.to_string();
}

}  // namespace csdml::obs
