// Telemetry registry for the deployed detector.
//
// The paper's evaluation is all measured latency (Fig. 3's per-kernel
// breakdown) and detection quality; an operable in-storage detector also
// needs those quantities *live*: counters for classifications and alerts,
// gauges for fleet state, latency histograms with tail percentiles. The
// instrumented hot paths (engine, detector, xrt, NVMe, guarded SSD) write
// into the process-global registry; the CLI (`csdml stats`) and the bench
// harness render or export snapshots.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace csdml::obs {

/// Frozen view of one histogram: fixed upper bounds plus an implicit
/// overflow bucket, with enough summary state to estimate percentiles.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count{0};
  double sum{0.0};
  double min{0.0};
  double max{0.0};
  std::vector<double> bounds;          ///< ascending upper bounds
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  /// Estimated p-quantile (p in [0,1]): linear interpolation inside the
  /// bucket containing the rank, clamped to the observed [min, max].
  double percentile(double p) const;

  /// Folds `other` into this snapshot for cross-source aggregation (e.g.
  /// fleet-level percentiles over per-board latency histograms). Requires
  /// identical bounds — per-board histograms share the default layout —
  /// and throws PreconditionError otherwise. Merging into an empty
  /// snapshot adopts `other` wholesale (including its name and bounds).
  void merge(const HistogramSnapshot& other);
};

/// Point-in-time copy of every metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// TextTable rendering: counters/gauges, then histograms with
  /// count/mean/p50/p95/p99/max columns.
  std::string to_text() const;
  /// Single JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
};

/// Thread-safe name-keyed metrics. Creation is implicit on first touch so
/// instrumentation sites stay one-liners.
class MetricsRegistry {
 public:
  void add_counter(const std::string& name, std::uint64_t delta = 1);
  void set_gauge(const std::string& name, double value);
  /// Records `value` into the named histogram (default latency buckets).
  void observe(const std::string& name, double value);
  /// Same, but the histogram is created with `bounds` (ascending upper
  /// bounds) if it does not exist yet; bounds of an existing histogram are
  /// immutable.
  void observe(const std::string& name, double value,
               const std::vector<double>& bounds);

  /// Current value of one counter (0 when never touched) — cheaper than a
  /// full snapshot for per-event assertions in tests and fuzz harnesses.
  std::uint64_t counter_value(const std::string& name) const;

  MetricsSnapshot snapshot() const;
  void reset();

  /// Power-of-two bounds from 2^-4 to 2^20 — covers sub-µs kernel items
  /// through multi-second scans when values are in microseconds.
  static std::vector<double> default_latency_bounds();

 private:
  struct Histogram {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count{0};
    double sum{0.0};
    double min{0.0};
    double max{0.0};
  };

  /// Hot counters are striped across cache-line-sized per-thread cells and
  /// folded on read: ingestion threads incrementing the same counter from
  /// different cores would otherwise bounce one line (and previously one
  /// global mutex) between them on every API call.
  static constexpr std::size_t kCounterStripes = 16;
  struct alignas(64) CounterCell {
    std::atomic<std::uint64_t> value{0};
  };
  struct ShardedCounter {
    std::array<CounterCell, kCounterStripes> cells{};

    std::uint64_t fold() const {
      std::uint64_t total = 0;
      for (const CounterCell& cell : cells) {
        total += cell.value.load(std::memory_order_relaxed);
      }
      return total;
    }
  };
  /// Stripe this thread writes; threads are assigned round-robin once.
  static std::size_t counter_stripe();

  /// Guards the name→counter map only; cell increments happen under a
  /// shared lock (creation is the rare exclusive case).
  mutable std::shared_mutex counters_mutex_;
  std::map<std::string, std::unique_ptr<ShardedCounter>> counters_;

  mutable std::mutex mutex_;  ///< gauges + histograms
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The process-global registry every instrumented component writes into.
MetricsRegistry& registry();

}  // namespace csdml::obs
