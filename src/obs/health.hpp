// Health / SLO evaluation over the metrics registry.
//
// RanStop's observation drives the objective: what bounds the damage a
// ransomware process does before mitigation is the detection-latency
// *tail*, not the mean. So the serving SLO is expressed as "a target
// fraction of classifications complete within the latency budget", and
// health is the burn rate of the remaining error budget, combined with the
// degraded-mode signals PR 3 introduced (deferrals, host-fallback serves,
// the unhealthy latch). The verdict is machine-readable: `csdml stats
// --health` and bench_fault_resilience both consume it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace csdml::obs {

struct SloConfig {
  /// Latency histogram the SLO is evaluated over (microseconds).
  std::string latency_histogram{"detector.inference_us"};
  /// Latency budget per classification.
  double latency_slo_us{5'000.0};
  /// Target fraction of classifications within the budget (0.99 = "two
  /// nines of classifications are fast enough").
  double target{0.99};
  /// Burn >= 1 consumes error budget as fast as allowed -> Degraded;
  /// burn >= unhealthy_burn means the tail has collapsed -> Unhealthy.
  double unhealthy_burn{10.0};
  /// Fraction of classifications allowed to ride degraded paths (deferral
  /// or host fallback) before the verdict degrades.
  double degraded_serve_budget{0.01};
  /// Below this sample count the latency SLO is "no data yet", not a burn.
  std::uint64_t min_samples{20};
};

enum class HealthVerdict { Ok = 0, Degraded = 1, Unhealthy = 2 };

const char* health_verdict_name(HealthVerdict verdict);

struct HealthReport {
  HealthVerdict verdict{HealthVerdict::Ok};
  /// Error-budget burn rate: (observed violating fraction) / (allowed
  /// violating fraction). 1.0 = burning exactly at budget.
  double slo_burn{0.0};
  /// Fraction of classifications within the latency budget (1.0 = all).
  double within_slo{1.0};
  double p99_latency_us{0.0};
  std::uint64_t classifications{0};
  std::uint64_t deferred{0};
  std::uint64_t fallback_serves{0};
  std::uint64_t unhealthy_latches{0};
  std::uint64_t recoveries{0};
  bool csd_healthy{true};
  /// Human-readable causes for a non-Ok verdict, machine-greppable.
  std::vector<std::string> reasons;

  std::string to_text() const;
  /// Single object: {"health":{"verdict":"ok",...,"reasons":[...]}}.
  std::string to_json() const;
};

/// Evaluates the SLO + degraded-mode state over a snapshot. `csd_healthy`
/// is the live engine latch (snapshot counters cannot tell whether the
/// latest latch recovered).
HealthReport evaluate_health(const MetricsSnapshot& snapshot, bool csd_healthy,
                             const SloConfig& config = {});

/// SLO config for one fleet board: `base`'s thresholds, evaluated over the
/// board-local latency series `<metrics_prefix>.ingest_to_verdict_us` that
/// the board's serving pipeline emits. The fleet's health sweep feeds the
/// result to evaluate_health with the board's own engine latch, so one
/// board's collapsing tail (or unhealthy latch) drains only that board.
SloConfig board_slo(const std::string& metrics_prefix,
                    const SloConfig& base = {});

}  // namespace csdml::obs
