// Prometheus text-format exposition of the metrics registry.
//
// Renders a MetricsSnapshot in the Prometheus text exposition format
// (version 0.0.4) so a node exporter sidecar — or a curl in a CI job — can
// scrape the very counters/gauges/histograms the hot paths maintain.
// Names are sanitised to the [a-zA-Z0-9_:] alphabet and prefixed with
// `csdml_`; counters additionally gain the conventional `_total` suffix,
// and histograms expose cumulative `_bucket{le=...}` series plus `_sum` and
// `_count`, exactly as prometheus' histogram_quantile expects.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace csdml::obs {

/// Full exposition document: one # TYPE comment + samples per metric,
/// terminated by a trailing newline (scrapers require it).
std::string to_prometheus_text(const MetricsSnapshot& snapshot);

/// `csdml_`-prefixed, alphabet-sanitised metric name (dots become
/// underscores): "engine.kernel.gates_us" -> "csdml_engine_kernel_gates_us".
std::string prometheus_name(const std::string& name);

}  // namespace csdml::obs
