#include "obs/timeseries.hpp"

#include <algorithm>
#include <chrono>

#include "common/env.hpp"
#include "obs/anomaly.hpp"

namespace csdml::obs {

TsdbConfig TsdbConfig::from_env() {
  TsdbConfig config;
  config.capacity = static_cast<std::size_t>(
      env_u64("CSDML_TSDB_CAPACITY", config.capacity, 8, 1u << 20));
  config.downsample_factor = static_cast<std::size_t>(
      env_u64("CSDML_TSDB_FACTOR", config.downsample_factor, 2, 64));
  config.tiers =
      static_cast<std::size_t>(env_u64("CSDML_TSDB_TIERS", config.tiers, 1, 6));
  config.interval_us =
      env_u64("CSDML_TSDB_INTERVAL_MS", config.interval_us / 1000, 1, 60'000) *
      1000;
  return config;
}

void TsBucket::absorb(const TsBucket& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  start_us = std::min(start_us, other.start_us);
  end_us = std::max(end_us, other.end_us);
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  sum += other.sum;
  count += other.count;
}

TsSeries::TsSeries(const TsdbConfig& config)
    : factor_(std::max<std::size_t>(config.downsample_factor, 2)) {
  const std::size_t capacity = std::max<std::size_t>(config.capacity, 1);
  const std::size_t tiers = std::max<std::size_t>(config.tiers, 1);
  tiers_.resize(tiers);
  for (auto& tier : tiers_) tier.ring.resize(capacity);
}

void TsSeries::append(std::int64_t t_us, double value) {
  ++samples_;
  last_ = value;
  last_t_us_ = t_us;
  TsBucket raw;
  raw.start_us = raw.end_us = t_us;
  raw.min = raw.max = raw.sum = value;
  raw.count = 1;
  push(0, raw);
}

void TsSeries::push(std::size_t tier, const TsBucket& bucket) {
  Tier& t = tiers_[tier];
  t.ring[t.appended % t.ring.size()] = bucket;
  ++t.appended;
  if (tier + 1 >= tiers_.size()) return;
  t.pending.absorb(bucket);
  if (++t.pending_fill < factor_) return;
  const TsBucket closed = t.pending;
  t.pending = TsBucket{};
  t.pending_fill = 0;
  ++promotions_;
  push(tier + 1, closed);
}

std::vector<TsBucket> TsSeries::buckets(std::size_t tier) const {
  std::vector<TsBucket> out;
  if (tier >= tiers_.size()) return out;
  const Tier& t = tiers_[tier];
  const std::size_t capacity = t.ring.size();
  const std::size_t retained = std::min<std::uint64_t>(t.appended, capacity);
  out.reserve(retained);
  const std::uint64_t first = t.appended - retained;
  for (std::uint64_t i = first; i < t.appended; ++i) {
    out.push_back(t.ring[i % capacity]);
  }
  return out;
}

TsBucket TsSeries::aggregate(std::size_t tier) const {
  TsBucket total;
  for (const TsBucket& bucket : buckets(tier)) total.absorb(bucket);
  return total;
}

TimeSeriesStore::TimeSeriesStore(TsdbConfig config)
    : config_(std::move(config)) {}

void TimeSeriesStore::record(const std::string& series, std::int64_t t_us,
                             double value) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = series_.find(series);
    if (it == series_.end()) {
      it = series_.emplace(series, std::make_unique<TsSeries>(config_)).first;
    }
    it->second->append(t_us, value);
  }
  registry().add_counter("tsdb.samples");
}

std::vector<std::string> TimeSeriesStore::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, _] : series_) out.push_back(name);
  return out;
}

bool TimeSeriesStore::has(const std::string& series) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.count(series) != 0;
}

std::vector<TsBucket> TimeSeriesStore::buckets(const std::string& series,
                                               std::size_t tier) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(series);
  if (it == series_.end()) return {};
  return it->second->buckets(tier);
}

double TimeSeriesStore::last(const std::string& series) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(series);
  return it == series_.end() ? 0.0 : it->second->last();
}

std::uint64_t TimeSeriesStore::samples(const std::string& series) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(series);
  return it == series_.end() ? 0 : it->second->samples();
}

TimeSeriesStore::Totals TimeSeriesStore::totals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Totals totals;
  totals.series = series_.size();
  for (const auto& [_, series] : series_) {
    totals.samples += series->samples();
    totals.promotions += series->promotions();
  }
  return totals;
}

void TimeSeriesStore::publish_gauges() const {
  const Totals totals = this->totals();
  registry().set_gauge("tsdb.series", static_cast<double>(totals.series));
  registry().set_gauge("tsdb.promotions",
                       static_cast<double>(totals.promotions));
}

SnapshotSampler::SnapshotSampler(std::vector<SampleSpec> specs)
    : specs_(std::move(specs)) {}

namespace {

double histogram_stat(const MetricsSnapshot& snapshot, const std::string& name,
                      SampleSpec::Kind kind) {
  for (const HistogramSnapshot& hist : snapshot.histograms) {
    if (hist.name != name) continue;
    switch (kind) {
      case SampleSpec::Kind::HistP50:
        return hist.percentile(0.50);
      case SampleSpec::Kind::HistP95:
        return hist.percentile(0.95);
      case SampleSpec::Kind::HistP99:
        return hist.percentile(0.99);
      case SampleSpec::Kind::HistCount:
        return static_cast<double>(hist.count);
      default:
        return 0.0;
    }
  }
  return 0.0;
}

double gauge_value(const MetricsSnapshot& snapshot, const std::string& name) {
  for (const auto& [gauge, value] : snapshot.gauges) {
    if (gauge == name) return value;
  }
  return 0.0;
}

std::uint64_t counter_value(const MetricsSnapshot& snapshot,
                            const std::string& name) {
  for (const auto& [counter, value] : snapshot.counters) {
    if (counter == name) return value;
  }
  return 0;
}

}  // namespace

std::map<std::string, double> SnapshotSampler::sample(
    std::int64_t t_us, const MetricsSnapshot& snapshot,
    TimeSeriesStore* store) {
  std::map<std::string, double> frame;
  const double elapsed_s =
      first_ ? 0.0
             : static_cast<double>(t_us - previous_t_us_) / 1'000'000.0;
  // Staged, committed after the loop: several specs may derive from one
  // source counter (a board's verdicts feed both its delta and its rate),
  // and each must see the same previous-tick value.
  std::map<std::string, std::uint64_t> next_counters;
  for (const SampleSpec& spec : specs_) {
    double value = 0.0;
    switch (spec.kind) {
      case SampleSpec::Kind::CounterDelta:
      case SampleSpec::Kind::CounterRate: {
        const std::uint64_t now = counter_value(snapshot, spec.metric);
        const auto it = previous_counters_.find(spec.metric);
        const std::uint64_t before =
            it != previous_counters_.end() ? it->second : 0;
        next_counters[spec.metric] = now;
        const double delta =
            now >= before ? static_cast<double>(now - before) : 0.0;
        if (spec.kind == SampleSpec::Kind::CounterDelta) {
          value = delta;
        } else {
          value = elapsed_s > 0.0 ? delta / elapsed_s : 0.0;
        }
        break;
      }
      case SampleSpec::Kind::Gauge:
        value = gauge_value(snapshot, spec.metric);
        break;
      case SampleSpec::Kind::HistP50:
      case SampleSpec::Kind::HistP95:
      case SampleSpec::Kind::HistP99:
      case SampleSpec::Kind::HistCount:
        value = histogram_stat(snapshot, spec.metric, spec.kind);
        break;
    }
    frame[spec.series] = value;
    if (store != nullptr) store->record(spec.series, t_us, value);
  }
  for (const auto& [metric, now] : next_counters) {
    previous_counters_[metric] = now;
  }
  previous_t_us_ = t_us;
  first_ = false;
  return frame;
}

std::vector<SampleSpec> board_sample_specs(const std::string& prefix) {
  using Kind = SampleSpec::Kind;
  return {
      {prefix + ".verdicts.delta", Kind::CounterDelta, prefix + ".verdicts"},
      {prefix + ".throughput", Kind::CounterRate, prefix + ".verdicts"},
      {prefix + ".shed.delta", Kind::CounterDelta, prefix + ".shed"},
      {prefix + ".deferred.delta", Kind::CounterDelta, prefix + ".deferred"},
      {prefix + ".p95_us", Kind::HistP95, prefix + ".ingest_to_verdict_us"},
      {prefix + ".p99_us", Kind::HistP99, prefix + ".ingest_to_verdict_us"},
  };
}

namespace {

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TelemetryCollector::TelemetryCollector(CollectorConfig config,
                                       std::vector<SampleSpec> specs,
                                       AlertEngine* alerts)
    : config_(std::move(config)),
      store_(config_.tsdb),
      sampler_(std::move(specs)),
      alerts_(alerts) {
  if (!config_.clock) config_.clock = steady_now_us;
  if (config_.start_thread) {
    thread_ = std::thread([this] { run(); });
  }
}

TelemetryCollector::~TelemetryCollector() { stop(); }

void TelemetryCollector::tick() {
  std::lock_guard<std::mutex> lock(tick_mutex_);
  const std::int64_t now_us = config_.clock();
  const MetricsSnapshot snapshot = registry().snapshot();
  sampler_.sample(now_us, snapshot, &store_);
  store_.publish_gauges();
  if (alerts_ != nullptr) alerts_->evaluate(store_, now_us);
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

void TelemetryCollector::stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TelemetryCollector::run() {
  const auto interval =
      std::chrono::microseconds(std::max<std::uint64_t>(
          config_.tsdb.interval_us, 1));
  while (!stopping_.load(std::memory_order_acquire)) {
    tick();
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait_for(lock, interval, [this] {
      return stopping_.load(std::memory_order_acquire);
    });
  }
}

}  // namespace csdml::obs
