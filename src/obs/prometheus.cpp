#include "obs/prometheus.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace csdml::obs {

namespace {

/// Prometheus floats: shortest round-trippable decimal is overkill here;
/// %.9g keeps bucket bounds like 0.0625 exact and avoids locale surprises.
std::string prom_number(double value) {
  if (value != value) return "NaN";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "csdml_";
  out.reserve(name.size() + out.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  // A digit cannot follow the prefix's underscore per the grammar; the
  // prefix itself guarantees a legal first character.
  return out;
}

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prometheus_name(name) + "_total";
    out << "# TYPE " << prom << " counter\n";
    out << prom << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prometheus_name(name);
    out << "# TYPE " << prom << " gauge\n";
    out << prom << ' ' << prom_number(value) << '\n';
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string prom = prometheus_name(h.name);
    out << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      out << prom << "_bucket{le=\"" << prom_number(h.bounds[i]) << "\"} "
          << cumulative << '\n';
    }
    out << prom << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    out << prom << "_sum " << prom_number(h.sum) << '\n';
    out << prom << "_count " << h.count << '\n';
  }
  return out.str();
}

}  // namespace csdml::obs
