#include "obs/anomaly.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/units.hpp"
#include "obs/flight_recorder.hpp"

namespace csdml::obs {

const char* alert_severity_name(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::Info:
      return "info";
    case AlertSeverity::Warning:
      return "warning";
    case AlertSeverity::Critical:
      return "critical";
  }
  return "unknown";
}

const char* alert_rule_kind_name(AlertRuleKind kind) {
  switch (kind) {
    case AlertRuleKind::AboveThreshold:
      return "above_threshold";
    case AlertRuleKind::BelowThreshold:
      return "below_threshold";
    case AlertRuleKind::EwmaZScore:
      return "ewma_zscore";
    case AlertRuleKind::RateOfChange:
      return "rate_of_change";
  }
  return "unknown";
}

ScoreDrift::ScoreDrift(DriftConfig config) : config_(config) {
  config_.bins = std::max<std::size_t>(config_.bins, 2);
  config_.window = std::max<std::size_t>(config_.window, config_.bins);
  counts_.assign(config_.bins, 0);
}

void ScoreDrift::observe(double score) {
  score = std::clamp(score, 0.0, 1.0);
  const std::size_t bin = std::min(
      config_.bins - 1, static_cast<std::size_t>(score * config_.bins));
  window_.push_back(score);
  ++counts_[bin];
  ++observed_;
  if (window_.size() > config_.window) {
    const double evicted = window_.front();
    window_.pop_front();
    const std::size_t old_bin = std::min(
        config_.bins - 1, static_cast<std::size_t>(evicted * config_.bins));
    --counts_[old_bin];
  }
}

void ScoreDrift::calibrate() { baseline_ = counts_; }

void ScoreDrift::set_baseline(const std::vector<double>& scores) {
  baseline_.assign(config_.bins, 0);
  for (double score : scores) {
    score = std::clamp(score, 0.0, 1.0);
    const std::size_t bin = std::min(
        config_.bins - 1, static_cast<std::size_t>(score * config_.bins));
    ++baseline_[bin];
  }
}

std::vector<double> ScoreDrift::normalized(
    const std::vector<std::uint64_t>& counts) const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  std::vector<double> out(counts.size(), 0.0);
  if (total == 0) return out;
  // Laplace-style floor keeps log(p/q) finite when a bin is empty on one
  // side only — standard practice for PSI on sparse histograms.
  const double floor = 1e-6;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = std::max(static_cast<double>(counts[i]) /
                          static_cast<double>(total),
                      floor);
  }
  return out;
}

double ScoreDrift::psi() const {
  if (baseline_.empty() || window_.size() < config_.min_scores) return 0.0;
  const std::vector<double> expected = normalized(baseline_);
  const std::vector<double> actual = normalized(counts_);
  double psi = 0.0;
  for (std::size_t i = 0; i < config_.bins; ++i) {
    psi += (actual[i] - expected[i]) * std::log(actual[i] / expected[i]);
  }
  return psi;
}

double ScoreDrift::ks() const {
  if (baseline_.empty() || window_.size() < config_.min_scores) return 0.0;
  std::uint64_t base_total = 0;
  std::uint64_t roll_total = 0;
  for (std::uint64_t c : baseline_) base_total += c;
  for (std::uint64_t c : counts_) roll_total += c;
  if (base_total == 0 || roll_total == 0) return 0.0;
  double base_cdf = 0.0;
  double roll_cdf = 0.0;
  double gap = 0.0;
  for (std::size_t i = 0; i < config_.bins; ++i) {
    base_cdf += static_cast<double>(baseline_[i]) /
                static_cast<double>(base_total);
    roll_cdf +=
        static_cast<double>(counts_[i]) / static_cast<double>(roll_total);
    gap = std::max(gap, std::abs(base_cdf - roll_cdf));
  }
  return gap;
}

AlertEngine::AlertEngine(FlightRecorder* recorder)
    : recorder_(recorder != nullptr ? recorder : &FlightRecorder::instance()) {}

void AlertEngine::add_rule(AlertRule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  RuleState state;
  if (std::isnan(rule.clear_threshold)) rule.clear_threshold = rule.threshold;
  state.alert.rule_id = rule.id;
  state.alert.severity = rule.severity;
  state.alert.board = rule.board;
  state.rule = std::move(rule);
  rules_[state.rule.id] = std::move(state);
}

std::size_t AlertEngine::rule_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rules_.size();
}

void AlertEngine::enable_drift(DriftConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  drift_.emplace(config);
  drift_state_ = RuleState{};
  drift_state_.rule.id = "model.score_drift";
  drift_state_.rule.severity = config.severity;
  drift_state_.rule.fire_for = config.fire_for;
  drift_state_.rule.clear_for = config.clear_for;
  drift_state_.alert.rule_id = drift_state_.rule.id;
  drift_state_.alert.severity = config.severity;
  drift_state_.alert.board = -1;
}

bool AlertEngine::drift_enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return drift_.has_value();
}

void AlertEngine::observe_score(double score) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (drift_) drift_->observe(score);
}

void AlertEngine::calibrate_drift() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (drift_) drift_->calibrate();
}

void AlertEngine::set_drift_baseline(const std::vector<double>& scores) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (drift_) drift_->set_baseline(scores);
}

double AlertEngine::drift_psi() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return drift_ ? drift_->psi() : 0.0;
}

double AlertEngine::drift_ks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return drift_ ? drift_->ks() : 0.0;
}

bool AlertEngine::violated(RuleState& state, double value) {
  const AlertRule& rule = state.rule;
  // An active alert clears against clear_threshold instead of threshold,
  // widening the hysteresis band for the threshold-style kinds.
  const bool active = state.alert.active;
  switch (rule.kind) {
    case AlertRuleKind::AboveThreshold:
      return active ? value > rule.clear_threshold : value > rule.threshold;
    case AlertRuleKind::BelowThreshold:
      return active ? value < rule.clear_threshold : value < rule.threshold;
    case AlertRuleKind::EwmaZScore: {
      bool violation = false;
      if (state.ewma_seeded && state.seen_samples >= rule.min_samples) {
        const double stddev = std::sqrt(std::max(state.ewma_var, 1e-12));
        const double z = std::abs(value - state.ewma) / stddev;
        violation = z > rule.threshold;
      }
      if (!state.ewma_seeded) {
        state.ewma = value;
        state.ewma_var = 0.0;
        state.ewma_seeded = true;
      } else if (!violation) {
        // Only clean samples update the baseline: folding a regression
        // into the EWMA would teach the rule to accept it.
        const double alpha = rule.ewma_alpha;
        const double diff = value - state.ewma;
        state.ewma += alpha * diff;
        state.ewma_var =
            (1.0 - alpha) * (state.ewma_var + alpha * diff * diff);
      }
      return violation;
    }
    case AlertRuleKind::RateOfChange: {
      bool violation = false;
      if (state.has_previous && state.seen_samples >= rule.min_samples) {
        const double base = std::max(std::abs(state.previous), 1.0);
        violation = std::abs(value - state.previous) / base > rule.threshold;
      }
      state.previous = value;
      state.has_previous = true;
      return violation;
    }
  }
  return false;
}

void AlertEngine::transition(RuleState& state, bool violation, double value,
                             std::int64_t now_us,
                             std::vector<Alert>& transitions) {
  Alert& alert = state.alert;
  alert.value = value;
  if (violation) {
    ++state.violation_streak;
    state.clean_streak = 0;
  } else {
    ++state.clean_streak;
    state.violation_streak = 0;
  }

  const char* severity = alert_severity_name(alert.severity);
  if (!alert.active && state.violation_streak >= state.rule.fire_for) {
    alert.active = true;
    alert.fired_at_us = now_us;
    ++alert.fire_count;
    char message[96];
    std::snprintf(message, sizeof(message), "%s fired (value %.3f)",
                  state.rule.id.c_str(), value);
    alert.message = message;
    registry().add_counter("alerts.fired");
    registry().add_counter(std::string("alerts.fired.") + severity);
    // Collector timestamps are microseconds; the recorder's timeline is
    // picoseconds.
    recorder_->record(FlightEventKind::Alert, "anomaly",
                      state.rule.id.c_str(), TimePoint{now_us * 1'000'000},
                      /*trace_id=*/0,
                      static_cast<std::uint64_t>(
                          state.rule.board < 0 ? 0 : state.rule.board));
    if (alert.severity == AlertSeverity::Critical) {
      const std::string reason = "alert:" + state.rule.id;
      recorder_->auto_dump(reason.c_str());
    }
    transitions.push_back(alert);
  } else if (alert.active && state.clean_streak >= state.rule.clear_for) {
    alert.active = false;
    alert.cleared_at_us = now_us;
    char message[96];
    std::snprintf(message, sizeof(message), "%s cleared (value %.3f)",
                  state.rule.id.c_str(), value);
    alert.message = message;
    registry().add_counter("alerts.cleared");
    recorder_->record(FlightEventKind::Alert, "anomaly",
                      (state.rule.id + ":clear").c_str(),
                      TimePoint{now_us * 1'000'000}, /*trace_id=*/0,
                      static_cast<std::uint64_t>(
                          state.rule.board < 0 ? 0 : state.rule.board));
    transitions.push_back(alert);
  }
}

std::vector<Alert> AlertEngine::evaluate(const TimeSeriesStore& store,
                                         std::int64_t now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Alert> transitions;

  for (auto& [id, state] : rules_) {
    const std::uint64_t samples = store.samples(state.rule.series);
    if (samples == 0 || samples == state.seen_samples) continue;
    state.seen_samples = samples;
    const double value = store.last(state.rule.series);
    if (samples < state.rule.min_samples &&
        (state.rule.kind == AlertRuleKind::AboveThreshold ||
         state.rule.kind == AlertRuleKind::BelowThreshold)) {
      continue;  // threshold rules wait out the warm-up window
    }
    // EWMA / rate-of-change rules run through violated() during warm-up so
    // their baselines seed; the min_samples gate inside keeps them quiet.
    const bool violation = violated(state, value);
    transition(state, violation, value, now_us, transitions);
  }

  if (drift_) {
    drift_state_.alert.severity = drift_->config().severity;
    const bool ready = drift_->calibrated() &&
                       drift_->observed() >= drift_->config().min_scores;
    if (ready) {
      const double psi = drift_->psi();
      const double ks = drift_->ks();
      const bool violation = psi > drift_->config().psi_threshold ||
                             ks > drift_->config().ks_threshold;
      transition(drift_state_, violation, psi, now_us, transitions);
    }
  }

  std::size_t active = 0;
  for (const auto& [id, state] : rules_) {
    if (state.alert.active) ++active;
  }
  if (drift_state_.alert.active) ++active;
  registry().set_gauge("alerts.active", static_cast<double>(active));
  return transitions;
}

std::vector<Alert> AlertEngine::alerts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Alert> out;
  out.reserve(rules_.size() + 1);
  for (const auto& [id, state] : rules_) out.push_back(state.alert);
  if (drift_) out.push_back(drift_state_.alert);
  return out;
}

std::vector<Alert> AlertEngine::active_alerts() const {
  std::vector<Alert> out;
  for (Alert& alert : alerts()) {
    if (alert.active) out.push_back(std::move(alert));
  }
  return out;
}

std::size_t AlertEngine::active_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t active = 0;
  for (const auto& [id, state] : rules_) {
    if (state.alert.active) ++active;
  }
  if (drift_state_.alert.active) ++active;
  return active;
}

bool AlertEngine::board_alerted(int board, AlertSeverity min_severity) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, state] : rules_) {
    if (state.alert.active && state.rule.board == board &&
        state.alert.severity >= min_severity) {
      return true;
    }
  }
  return false;
}

}  // namespace csdml::obs
