// Fleet telemetry time-series store — the time dimension the point-in-time
// observability stack (metrics snapshots, spans, flight recorder) lacks.
//
// A deployed CSD detector fails slowly as often as it fails loudly: a p99
// creeping up over minutes, a board quietly shedding more each sweep, a
// verdict-score distribution drifting off its calibration. Catching those
// needs *history*, kept on-device at bounded cost:
//
//   collector thread ──every interval──> registry().snapshot()
//        │                                    │
//        │   SnapshotSampler (counter deltas, rates, histogram tails)
//        ▼                                    ▼
//   TimeSeriesStore: one TsSeries per derived metric
//        raw tier   ── every `downsample_factor` samples promote ──▶
//        tier 1     ── every `downsample_factor` buckets promote ──▶
//        tier 2 ...
//
// Each tier is a fixed-capacity ring of buckets carrying min/max/sum/count,
// so promotion loses resolution but never mass: the sum and count of a
// tier-1 bucket equal the sums and counts of the raw samples it absorbed,
// and the extremes survive verbatim (the property test_timeseries pins).
// Timestamps are injected, never read from a global clock, so every test
// and the alert-latency bench run on a deterministic timeline.
//
// The collector thread is owned by whoever operates the fleet (BoardFleet
// by default); its per-tick cost is one registry snapshot plus a handful
// of ring appends — bench_timeseries gates the duty cycle at <1% of the
// serving hot path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace csdml::obs {

struct TsdbConfig {
  /// Buckets retained per tier (every tier uses the same ring size).
  std::size_t capacity{240};
  /// Buckets of tier k merged into one bucket of tier k+1.
  std::size_t downsample_factor{8};
  /// Total tiers including raw (1 = raw only, no downsampling).
  std::size_t tiers{3};
  /// Collector sampling period (wall time, microseconds).
  std::uint64_t interval_us{100'000};

  /// Environment overrides with hardened parsing (invalid values warn and
  /// fall back; see common/env.hpp): CSDML_TSDB_CAPACITY [8, 1048576],
  /// CSDML_TSDB_FACTOR [2, 64], CSDML_TSDB_TIERS [1, 6],
  /// CSDML_TSDB_INTERVAL_MS [1, 60000].
  static TsdbConfig from_env();
};

/// One aggregation bucket. A raw sample is a bucket with count == 1.
struct TsBucket {
  std::int64_t start_us{0};  ///< timestamp of the first absorbed sample
  std::int64_t end_us{0};    ///< timestamp of the last absorbed sample
  double min{0.0};
  double max{0.0};
  double sum{0.0};
  std::uint64_t count{0};

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  /// Folds `other` in: extremes, mass and the covered time range.
  void absorb(const TsBucket& other);
};

/// Multi-resolution ring for one metric. Not thread-safe on its own; the
/// store serialises access.
class TsSeries {
 public:
  explicit TsSeries(const TsdbConfig& config);

  /// Appends one raw sample; cascades tier promotions when a tier's
  /// accumulation window fills.
  void append(std::int64_t t_us, double value);

  std::size_t tier_count() const { return tiers_.size(); }
  /// Retained buckets of one tier, oldest first (partial accumulation
  /// windows are not included — they surface once promoted).
  std::vector<TsBucket> buckets(std::size_t tier) const;
  /// One bucket folding everything a tier retains.
  TsBucket aggregate(std::size_t tier) const;

  std::uint64_t samples() const { return samples_; }
  std::uint64_t promotions() const { return promotions_; }
  double last() const { return last_; }
  std::int64_t last_t_us() const { return last_t_us_; }

 private:
  void push(std::size_t tier, const TsBucket& bucket);

  struct Tier {
    std::vector<TsBucket> ring;
    std::uint64_t appended{0};  ///< buckets ever closed into this tier
    TsBucket pending{};         ///< accumulating toward the next tier
    std::size_t pending_fill{0};
  };

  std::size_t factor_;
  std::vector<Tier> tiers_;
  std::uint64_t samples_{0};
  std::uint64_t promotions_{0};
  double last_{0.0};
  std::int64_t last_t_us_{0};
};

/// Thread-safe name-keyed series. Creation is implicit on first record,
/// mirroring MetricsRegistry. Feeds `tsdb.*` registry metrics so the store
/// itself is observable (csdml_tsdb_* in the Prometheus exposition).
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TsdbConfig config = {});

  void record(const std::string& series, std::int64_t t_us, double value);

  std::vector<std::string> names() const;
  bool has(const std::string& series) const;
  /// Copies of one series' retained buckets (empty vector for unknown
  /// names or tiers — readers render what exists, they don't throw).
  std::vector<TsBucket> buckets(const std::string& series,
                                std::size_t tier = 0) const;
  /// Most recent raw value (0 when the series is unknown).
  double last(const std::string& series) const;
  std::uint64_t samples(const std::string& series) const;

  struct Totals {
    std::size_t series{0};
    std::uint64_t samples{0};
    std::uint64_t promotions{0};
  };
  Totals totals() const;
  /// Publishes tsdb.series / tsdb.promotions gauges from totals().
  void publish_gauges() const;

  const TsdbConfig& config() const { return config_; }

 private:
  TsdbConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<TsSeries>> series_;
};

/// One derived series a SnapshotSampler computes per tick.
struct SampleSpec {
  enum class Kind {
    CounterDelta,  ///< counter increase since the previous tick
    CounterRate,   ///< increase per second of timeline (0 on first tick)
    Gauge,         ///< gauge value verbatim
    HistP50,
    HistP95,
    HistP99,
    HistCount,
  };
  std::string series;  ///< output series name in the store
  Kind kind{Kind::CounterDelta};
  std::string metric;  ///< source counter/gauge/histogram in the snapshot
};

/// Turns consecutive MetricsSnapshots into time-series points: counter
/// deltas and rates between ticks, gauge levels, histogram tail
/// percentiles. Owns the previous-tick state, so one sampler per timeline.
/// This replaces the private snapshot-delta loops callers (csdml watch)
/// used to hand-roll.
class SnapshotSampler {
 public:
  explicit SnapshotSampler(std::vector<SampleSpec> specs);

  /// Computes every spec against `snapshot` at time `t_us`, records the
  /// values into `store` (when non-null) and returns them keyed by series
  /// name. Ticks must carry non-decreasing timestamps.
  std::map<std::string, double> sample(std::int64_t t_us,
                                       const MetricsSnapshot& snapshot,
                                       TimeSeriesStore* store);

  const std::vector<SampleSpec>& specs() const { return specs_; }

 private:
  std::vector<SampleSpec> specs_;
  std::map<std::string, std::uint64_t> previous_counters_;
  std::int64_t previous_t_us_{0};
  bool first_{true};
};

/// The per-board series a fleet collector derives from one serving
/// pipeline's `<prefix>.*` metrics: `<prefix>.verdicts.delta`,
/// `<prefix>.throughput` (verdicts/s), `<prefix>.shed.delta`,
/// `<prefix>.deferred.delta`, `<prefix>.p95_us`, `<prefix>.p99_us`.
std::vector<SampleSpec> board_sample_specs(const std::string& prefix);

class AlertEngine;  // obs/anomaly.hpp

struct CollectorConfig {
  TsdbConfig tsdb{};
  /// Timeline source, microseconds. Defaults to steady wall clock; tests
  /// and benches inject a deterministic one.
  std::function<std::int64_t()> clock{};
  /// Start the background sampling thread. When false the owner drives
  /// tick() explicitly (deterministic mode).
  bool start_thread{true};
};

/// The single low-overhead collector thread: every `interval_us` it takes
/// one registry snapshot, runs the sampler, lets the alert engine
/// evaluate, and publishes the tsdb gauges. tick() is public so owners can
/// force a deterministic sample (tests, `csdml top` frames).
class TelemetryCollector {
 public:
  /// `alerts` may be null (no alerting) and is not owned; it must outlive
  /// the collector.
  TelemetryCollector(CollectorConfig config, std::vector<SampleSpec> specs,
                     AlertEngine* alerts = nullptr);
  ~TelemetryCollector();  ///< stop()

  TelemetryCollector(const TelemetryCollector&) = delete;
  TelemetryCollector& operator=(const TelemetryCollector&) = delete;

  /// One sample now, from any thread (serialised internally).
  void tick();

  void stop();  ///< joins the thread; idempotent

  TimeSeriesStore& store() { return store_; }
  const TimeSeriesStore& store() const { return store_; }
  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void run();

  CollectorConfig config_;
  TimeSeriesStore store_;
  std::mutex tick_mutex_;
  SnapshotSampler sampler_;
  AlertEngine* alerts_;
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<bool> stopping_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::thread thread_;  ///< last member: started once everything else exists
};

}  // namespace csdml::obs
