// Error-handling helpers shared by every csdml module.
//
// Policy (per C++ Core Guidelines E.2/E.14): throw exceptions derived from
// std::runtime_error for violated runtime preconditions; use assertions only
// for internal logic errors that indicate a bug in csdml itself.
#pragma once

#include <stdexcept>
#include <string>

namespace csdml {

/// Base class for every error thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// A device/simulation object was asked to do something its configured
/// resources cannot support (e.g. more AXI ports than the FPGA exposes).
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what) : Error(what) {}
};

/// Malformed external input (weight file, CSV dataset, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_precondition(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": requirement `" + expr + "` failed" +
                          (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace csdml

/// Validate a documented precondition of a public entry point.
#define CSDML_REQUIRE(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::csdml::detail::fail_precondition(#expr, __FILE__, __LINE__, msg); \
    }                                                                    \
  } while (false)
