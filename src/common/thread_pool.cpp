#include "common/thread_pool.hpp"

#include "common/error.hpp"

namespace csdml {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::thread::hardware_concurrency();
    if (thread_count == 0) thread_count = 1;
  }
  workers_.reserve(thread_count - 1);
  for (std::size_t i = 1; i < thread_count; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_indices(std::size_t executor) {
  const std::function<void(std::size_t, std::size_t)>* fn = job_;
  const std::size_t count = job_count_;
  for (std::size_t index = next_index_.fetch_add(1); index < count;
       index = next_index_.fetch_add(1)) {
    try {
      (*fn)(executor, index);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_main(std::size_t executor) {
  std::uint64_t seen_generation = 0;
  while (true) {
    std::unique_lock<std::mutex> lock(mutex_);
    wake_cv_.wait(lock, [&] {
      return stopping_ || generation_ != seen_generation;
    });
    if (stopping_) return;
    seen_generation = generation_;
    lock.unlock();

    run_indices(executor);

    lock.lock();
    if (--busy_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  // Below ~2 indices per executor the wake/steal handshake dominates the
  // work itself; run the range inline on the caller instead. A full
  // serving micro-batch (coalesce cap) lands at or above this threshold,
  // so saturated batches still fan out.
  if (workers_.empty() || count < 2 * thread_count()) {
    for (std::size_t index = 0; index < count; ++index) fn(0, index);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    CSDML_REQUIRE(job_ == nullptr, "parallel_for is not reentrant");
    job_ = &fn;
    job_count_ = count;
    next_index_.store(0);
    busy_workers_ = workers_.size();
    ++generation_;
  }
  wake_cv_.notify_all();

  // The caller is executor 0 and works the same index stream.
  run_indices(0);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return busy_workers_ == 0; });
  job_ = nullptr;
  job_count_ = 0;
  std::exception_ptr error = first_error_;
  first_error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace csdml
