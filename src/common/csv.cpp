#include "common/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace csdml {
namespace {

/// Splits one logical CSV record starting at `pos`; advances `pos` past the
/// record's terminating newline (or to text.size()).
std::vector<std::string> parse_record(const std::string& text, std::size_t& pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field.push_back('"');
          ++pos;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else {
      if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(field));
        field.clear();
      } else if (c == '\n') {
        ++pos;
        break;
      } else if (c == '\r') {
        // swallow; the following \n (if any) terminates the record
      } else {
        field.push_back(c);
      }
    }
    ++pos;
  }
  if (in_quotes) throw ParseError("unterminated quoted CSV field");
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace

CsvDocument parse_csv(const std::string& text, bool has_header) {
  CsvDocument doc;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    auto fields = parse_record(text, pos);
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (first && has_header) {
      doc.header = std::move(fields);
    } else {
      doc.rows.push_back(std::move(fields));
    }
    first = false;
  }
  return doc;
}

CsvDocument read_csv_file(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str(), has_header);
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace csdml
