// Hardened parsing for numeric environment knobs (CSDML_FLIGHT_EVENTS,
// CSDML_FUZZ_ITERS, CSDML_TSDB_*, ...).
//
// An operator fat-fingering `CSDML_FLIGHT_EVENTS=1O24` should get a loud
// one-line warning and the documented default, not a silently
// misconfigured ring. Every rejection path — non-numeric text, trailing
// garbage, zero, negative, or out-of-range values — logs one structured
// `log::kv` line naming the variable, the offending value and the
// fallback actually used.
#pragma once

#include <cstdint>
#include <limits>

namespace csdml {

/// Reads the unsigned-integer knob `name`. Unset or empty returns
/// `fallback` silently; anything present but unusable (not a number,
/// trailing garbage, zero when `min` > 0, or outside [min, max]) logs a
/// Warn line and returns `fallback`. Values are never clamped: a knob is
/// either valid as written or ignored as a whole.
std::uint64_t env_u64(const char* name, std::uint64_t fallback,
                      std::uint64_t min = 1,
                      std::uint64_t max = std::numeric_limits<std::uint64_t>::max());

}  // namespace csdml
