#include "common/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"

namespace csdml {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  CSDML_REQUIRE(n_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::variance() const {
  CSDML_REQUIRE(n_ >= 2, "variance needs at least two samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  CSDML_REQUIRE(n_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  CSDML_REQUIRE(n_ > 0, "max of empty sample");
  return max_;
}

namespace {

struct TRow {
  std::size_t df;
  double t90, t95, t99;
};

// Two-sided critical values of Student's t distribution.
constexpr std::array<TRow, 34> kTTable{{
    {1, 6.314, 12.706, 63.657},  {2, 2.920, 4.303, 9.925},
    {3, 2.353, 3.182, 5.841},    {4, 2.132, 2.776, 4.604},
    {5, 2.015, 2.571, 4.032},    {6, 1.943, 2.447, 3.707},
    {7, 1.895, 2.365, 3.499},    {8, 1.860, 2.306, 3.355},
    {9, 1.833, 2.262, 3.250},    {10, 1.812, 2.228, 3.169},
    {11, 1.796, 2.201, 3.106},   {12, 1.782, 2.179, 3.055},
    {13, 1.771, 2.160, 3.012},   {14, 1.761, 2.145, 2.977},
    {15, 1.753, 2.131, 2.947},   {16, 1.746, 2.120, 2.921},
    {17, 1.740, 2.110, 2.898},   {18, 1.734, 2.101, 2.878},
    {19, 1.729, 2.093, 2.861},   {20, 1.725, 2.086, 2.845},
    {21, 1.721, 2.080, 2.831},   {22, 1.717, 2.074, 2.819},
    {23, 1.714, 2.069, 2.807},   {24, 1.711, 2.064, 2.797},
    {25, 1.708, 2.060, 2.787},   {26, 1.706, 2.056, 2.779},
    {27, 1.703, 2.052, 2.771},   {28, 1.701, 2.048, 2.763},
    {29, 1.699, 2.045, 2.756},   {30, 1.697, 2.042, 2.750},
    {40, 1.684, 2.021, 2.704},   {60, 1.671, 2.000, 2.660},
    {120, 1.658, 1.980, 2.617},  {1000, 1.646, 1.962, 2.581},
}};

double row_value(const TRow& row, double confidence) {
  if (confidence == 0.90) return row.t90;
  if (confidence == 0.95) return row.t95;
  if (confidence == 0.99) return row.t99;
  throw PreconditionError("supported confidence levels: 0.90, 0.95, 0.99");
}

}  // namespace

double student_t_critical(double confidence, std::size_t df) {
  CSDML_REQUIRE(df >= 1, "degrees of freedom must be >= 1");
  const TRow* prev = &kTTable.front();
  for (const auto& row : kTTable) {
    if (row.df == df) return row_value(row, confidence);
    if (row.df > df) {
      // Linear interpolation in 1/df between bracketing table rows.
      const double a = 1.0 / static_cast<double>(prev->df);
      const double b = 1.0 / static_cast<double>(row.df);
      const double x = 1.0 / static_cast<double>(df);
      const double w = (a - x) / (a - b);
      return row_value(*prev, confidence) * (1.0 - w) + row_value(row, confidence) * w;
    }
    prev = &row;
  }
  // df beyond the table: normal approximation via the last row.
  return row_value(kTTable.back(), confidence);
}

ConfidenceInterval confidence_interval(const std::vector<double>& samples,
                                       double confidence) {
  CSDML_REQUIRE(samples.size() >= 2, "confidence interval needs >= 2 samples");
  RunningStats stats;
  for (const double s : samples) stats.add(s);
  const double t = student_t_critical(confidence, samples.size() - 1);
  const double sem = stats.stddev() / std::sqrt(static_cast<double>(samples.size()));
  ConfidenceInterval ci;
  ci.mean = stats.mean();
  ci.lower = ci.mean - t * sem;
  ci.upper = ci.mean + t * sem;
  ci.confidence = confidence;
  return ci;
}

double percentile(std::vector<double> samples, double p) {
  CSDML_REQUIRE(!samples.empty(), "percentile of empty sample");
  CSDML_REQUIRE(p >= 0.0 && p <= 1.0, "p must be in [0, 1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double pos = p * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace csdml
