#include "common/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace csdml {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("CSDML_LOG_LEVEL");
  if (env == nullptr) return LogLevel::Warn;
  return parse_log_level(env, LogLevel::Warn);
}

std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(std::string_view name, LogLevel fallback) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return fallback;
}

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << component << ": " << message
            << '\n';
}

namespace detail {
LogLine::~LogLine() { log_message(level_, component_, stream_.str()); }
}  // namespace detail

}  // namespace csdml
