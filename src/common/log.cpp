#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace csdml {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << component << ": " << message
            << '\n';
}

namespace detail {
LogLine::~LogLine() { log_message(level_, component_, stream_.str()); }
}  // namespace detail

}  // namespace csdml
