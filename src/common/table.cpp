#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace csdml {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  CSDML_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  CSDML_REQUIRE(row.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "  " : "") << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c];
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out << std::string(total >= 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

}  // namespace csdml
