// Minimal JSON document builder for machine-readable bench/tool output.
//
// The metrics registry serialises itself; this helper exists for outputs
// with structure the registry doesn't model (nested objects, arrays of
// result rows, e.g. BENCH_throughput.json). Emission-only, append-order
// preserving, no DOM.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace csdml {

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(const std::string& name) {
    separate();
    out_ += quote(name);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) { return raw(quote(v)); }
  JsonWriter& value(const char* v) { return raw(quote(v)); }
  JsonWriter& value(double v) {
    if (!std::isfinite(v)) return raw("null");
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.9g", v);
    return raw(buffer);
  }
  JsonWriter& value(std::int64_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(std::uint64_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(int v) { return raw(std::to_string(v)); }
  JsonWriter& value(unsigned v) { return raw(std::to_string(v)); }
  JsonWriter& value(bool v) { return raw(v ? "true" : "false"); }

  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    return key(name).value(v);
  }

  const std::string& str() const { return out_; }

 private:
  JsonWriter& open(char c) {
    separate();
    out_ += c;
    first_ = true;
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    first_ = false;
    return *this;
  }
  JsonWriter& raw(const std::string& text) {
    separate();
    out_ += text;
    return *this;
  }
  /// Emits the comma between container members; keys already did it.
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!first_) out_ += ',';
    first_ = false;
  }
  static std::string quote(const std::string& s) {
    std::string quoted = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': quoted += "\\\""; break;
        case '\\': quoted += "\\\\"; break;
        case '\n': quoted += "\\n"; break;
        case '\t': quoted += "\\t"; break;
        case '\r': quoted += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            quoted += buffer;
          } else {
            quoted += c;
          }
      }
    }
    quoted += '"';
    return quoted;
  }

  std::string out_;
  bool first_{true};
  bool pending_value_{false};
};

}  // namespace csdml
