// Bounded lock-free single-producer/single-consumer ring.
//
// The serving layer hands classification requests from ingestion threads to
// the coalescer through one of these per shard: the producer side is
// serialised by the shard (whichever ingestion thread holds the shard owns
// the push), the consumer is always the single coalescer thread, so the
// classic two-index Lamport queue applies — a push and a pop never touch
// the same index, and a full ring is a clean, observable rejection
// (backpressure) instead of an unbounded queue hiding overload.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace csdml {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two so index wrapping is
  /// a mask, never a modulo.
  explicit SpscRing(std::size_t min_capacity) {
    CSDML_REQUIRE(min_capacity > 0, "ring capacity must be positive");
    std::size_t capacity = 1;
    while (capacity < min_capacity) capacity <<= 1;
    slots_.resize(capacity);
    mask_ = capacity - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false (item untouched beyond the move attempt
  /// never happening) when the ring is full — the caller sheds.
  bool try_push(T&& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head == slots_.size()) return false;
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact when read from producer or consumer).
  std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<T> slots_;
  std::size_t mask_{0};
  /// Producer and consumer indices live on their own cache lines so a
  /// pushing ingestion thread never invalidates the coalescer's line.
  alignas(64) std::atomic<std::size_t> head_{0};  ///< next pop (consumer)
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< next push (producer)
};

}  // namespace csdml
