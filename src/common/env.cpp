#include "common/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/log.hpp"

namespace csdml {

std::uint64_t env_u64(const char* name, std::uint64_t fallback,
                      std::uint64_t min, std::uint64_t max) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;

  // strtoull accepts leading whitespace and a sign; a negative knob must
  // not wrap around to a huge unsigned value, so reject '-' up front.
  const char* cursor = raw;
  while (std::isspace(static_cast<unsigned char>(*cursor))) ++cursor;
  const bool negative = *cursor == '-';

  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  const bool overflowed = errno == ERANGE;
  const bool numeric = end != raw && *end == '\0';

  if (negative || !numeric || overflowed ||
      parsed < min || parsed > max) {
    CSDML_LOG_WARN("env") << "ignoring invalid " << name
                          << kv("value", raw)
                          << kv("expected_min", min)
                          << kv("expected_max", max)
                          << kv("fallback", fallback);
    return fallback;
  }
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace csdml
