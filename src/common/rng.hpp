// Deterministic pseudo-random number generation.
//
// Every stochastic component in csdml (weight init, dataset synthesis,
// latency jitter) draws from an explicitly seeded Rng so that experiments
// are reproducible run-to-run. The generator is xoshiro256**, which is
// fast, passes BigCrush, and — unlike std::mt19937 — has a trivially
// documented state layout that will never change between standard-library
// releases.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace csdml {

/// xoshiro256** by Blackman & Vigna (public domain reference construction).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derives an independent stream for a named subsystem. Identical
  /// (parent seed, name) pairs always yield the same child stream.
  Rng fork(std::string_view stream_name) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (cached spare).
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// Log-normal distribution parameterised by the mean/stddev of the
  /// underlying normal (natural log scale).
  double lognormal(double log_mean, double log_stddev);
  /// Bernoulli trial.
  bool chance(double probability);
  /// Samples an index according to non-negative weights (need not sum to 1).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element. Requires non-empty input.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

 private:
  explicit Rng(const std::array<std::uint64_t, 4>& state) : state_(state) {}

  std::array<std::uint64_t, 4> state_{};
  double spare_normal_{0.0};
  bool has_spare_normal_{false};
};

}  // namespace csdml
