// Strong types for time, frequency and data size used across the simulator.
//
// All device models account internally in picoseconds (integer) so that
// cycle↔time conversions at realistic clock rates (100 MHz – 1.5 GHz) are
// exact; reporting helpers convert to µs doubles only at the edge.
#pragma once

#include <cstdint>
#include <compare>

#include "common/error.hpp"

namespace csdml {

/// Integral count of clock cycles of some (externally known) clock.
struct Cycles {
  std::uint64_t count{0};

  constexpr Cycles() = default;
  constexpr explicit Cycles(std::uint64_t c) : count(c) {}

  friend constexpr Cycles operator+(Cycles a, Cycles b) {
    return Cycles{a.count + b.count};
  }
  friend constexpr Cycles operator*(Cycles a, std::uint64_t k) {
    return Cycles{a.count * k};
  }
  friend constexpr Cycles operator*(std::uint64_t k, Cycles a) { return a * k; }
  Cycles& operator+=(Cycles other) {
    count += other.count;
    return *this;
  }
  friend constexpr auto operator<=>(Cycles, Cycles) = default;
};

/// Simulated wall-clock duration, integer picoseconds.
struct Duration {
  std::int64_t picos{0};

  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ps) : picos(ps) {}

  static constexpr Duration picoseconds(std::int64_t ps) { return Duration{ps}; }
  static constexpr Duration nanoseconds(double ns) {
    return Duration{static_cast<std::int64_t>(ns * 1e3)};
  }
  static constexpr Duration microseconds(double us) {
    return Duration{static_cast<std::int64_t>(us * 1e6)};
  }
  static constexpr Duration zero() { return Duration{0}; }

  constexpr double as_nanoseconds() const { return static_cast<double>(picos) / 1e3; }
  constexpr double as_microseconds() const { return static_cast<double>(picos) / 1e6; }
  constexpr double as_milliseconds() const { return static_cast<double>(picos) / 1e9; }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.picos + b.picos};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.picos - b.picos};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.picos * k};
  }
  Duration& operator+=(Duration other) {
    picos += other.picos;
    return *this;
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;
};

/// Absolute simulated time since simulation start, integer picoseconds.
struct TimePoint {
  std::int64_t picos{0};

  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t ps) : picos(ps) {}

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.picos + d.picos};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration{a.picos - b.picos};
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;
};

/// A clock frequency; converts cycle counts to durations exactly.
class Frequency {
 public:
  constexpr Frequency() = default;
  static constexpr Frequency megahertz(double mhz) {
    // Period in picoseconds: 1e12 / (mhz * 1e6) = 1e6 / mhz.
    return Frequency{static_cast<std::int64_t>(1e6 / mhz), mhz};
  }

  /// Clock period.
  constexpr Duration period() const { return Duration{period_picos_}; }

  constexpr double mhz() const { return mhz_; }

  /// Duration of `c` cycles of this clock.
  constexpr Duration duration_of(Cycles c) const {
    return Duration{static_cast<std::int64_t>(c.count) * period_picos_};
  }

  /// Cycles (rounded up) needed to cover duration `d`.
  constexpr Cycles cycles_for(Duration d) const {
    if (d.picos <= 0) return Cycles{0};
    return Cycles{static_cast<std::uint64_t>((d.picos + period_picos_ - 1) /
                                             period_picos_)};
  }

 private:
  constexpr Frequency(std::int64_t period_ps, double mhz)
      : period_picos_(period_ps), mhz_(mhz) {}
  std::int64_t period_picos_{1};
  double mhz_{0.0};
};

/// Data sizes in bytes with readable constructors.
struct Bytes {
  std::uint64_t count{0};

  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t b) : count(b) {}
  static constexpr Bytes kib(std::uint64_t k) { return Bytes{k * 1024ULL}; }
  static constexpr Bytes mib(std::uint64_t m) { return Bytes{m * 1024ULL * 1024ULL}; }
  static constexpr Bytes gib(std::uint64_t g) {
    return Bytes{g * 1024ULL * 1024ULL * 1024ULL};
  }

  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes{a.count + b.count}; }
  friend constexpr auto operator<=>(Bytes, Bytes) = default;
};

/// Throughput; computes transfer times for byte counts.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  static constexpr Bandwidth gib_per_s(double g) {
    return Bandwidth{g * 1024.0 * 1024.0 * 1024.0};
  }
  static constexpr Bandwidth gb_per_s(double g) { return Bandwidth{g * 1e9}; }

  constexpr double bytes_per_second() const { return bytes_per_s_; }

  /// Time to move `b` bytes at this rate (no per-transfer overhead).
  Duration transfer_time(Bytes b) const {
    CSDML_REQUIRE(bytes_per_s_ > 0.0, "bandwidth must be positive");
    const double seconds = static_cast<double>(b.count) / bytes_per_s_;
    return Duration{static_cast<std::int64_t>(seconds * 1e12)};
  }

 private:
  constexpr explicit Bandwidth(double bps) : bytes_per_s_(bps) {}
  double bytes_per_s_{0.0};
};

}  // namespace csdml
