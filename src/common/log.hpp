// Tiny leveled logger. Off-by-default below Warn so benches stay quiet;
// examples flip the level to Info to narrate what the CSD is doing. The
// CSDML_LOG_LEVEL environment variable (trace|debug|info|warn|error|off)
// sets the startup threshold, so examples/CI can turn on Debug without
// code changes.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace csdml {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses a CSDML_LOG_LEVEL-style name (case-insensitive); `fallback` on
/// anything unrecognised.
LogLevel parse_log_level(std::string_view name, LogLevel fallback);

/// Structured key=value suffix for log lines:
///   CSDML_LOG_INFO("csd") << "flash read" << kv("pages", pages);
/// renders as `flash read pages=4`.
template <typename T>
std::string kv(std::string_view key, const T& value) {
  std::ostringstream out;
  out << ' ' << key << '=' << value;
  return out.str();
}

/// Emits one formatted line to stderr (thread-safe at line granularity).
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

/// Stream-style helpers: CSDML_LOG_INFO("csd") << "flash read " << pages;
#define CSDML_LOG_TRACE(component) ::csdml::detail::LogLine(::csdml::LogLevel::Trace, component)
#define CSDML_LOG_DEBUG(component) ::csdml::detail::LogLine(::csdml::LogLevel::Debug, component)
#define CSDML_LOG_INFO(component) ::csdml::detail::LogLine(::csdml::LogLevel::Info, component)
#define CSDML_LOG_WARN(component) ::csdml::detail::LogLine(::csdml::LogLevel::Warn, component)
#define CSDML_LOG_ERROR(component) ::csdml::detail::LogLine(::csdml::LogLevel::Error, component)

}  // namespace csdml
