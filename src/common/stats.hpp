// Descriptive statistics and confidence intervals.
//
// Table I of the paper reports execution-time means with 95% confidence
// intervals; ConfidenceInterval reproduces that computation (Student-t,
// two-sided) exactly.
#pragma once

#include <cstddef>
#include <vector>

namespace csdml {

/// Welford-style single-pass accumulator for mean/variance plus extrema.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator). Requires count() >= 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// A two-sided confidence interval around a sample mean.
struct ConfidenceInterval {
  double mean{0.0};
  double lower{0.0};
  double upper{0.0};
  double confidence{0.95};

  double half_width() const { return (upper - lower) / 2.0; }
};

/// Two-sided Student-t critical value for the given confidence level and
/// degrees of freedom (exact table for small df, normal limit for large).
/// Supported confidence levels: 0.90, 0.95, 0.99.
double student_t_critical(double confidence, std::size_t degrees_of_freedom);

/// CI over raw samples; requires >= 2 samples.
ConfidenceInterval confidence_interval(const std::vector<double>& samples,
                                       double confidence = 0.95);

/// p in [0,1]; linear interpolation between order statistics.
double percentile(std::vector<double> samples, double p);

}  // namespace csdml
