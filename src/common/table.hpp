// ASCII table renderer used by the bench harness so every reproduced
// paper table/figure prints with aligned, labelled rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace csdml {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with fixed precision.
  static std::string num(double value, int precision = 5);

  /// Renders with a box-drawing rule under the header.
  void print(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace csdml
