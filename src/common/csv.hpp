// Minimal CSV reader/writer.
//
// The paper's offline training pipeline "consumes a CSV dataset consisting
// of n+1 columns and N rows for sequences of n items plus a label"; the
// ransomware dataset builder writes exactly that layout and the nn data
// loader reads it back through this module.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace csdml {

/// One parsed CSV document: a header row (possibly empty) plus data rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. Handles quoted fields with embedded commas/quotes and
/// both \n and \r\n line endings. If `has_header` the first row becomes
/// `header`.
CsvDocument parse_csv(const std::string& text, bool has_header);

/// Reads and parses a CSV file; throws ParseError on I/O failure.
CsvDocument read_csv_file(const std::string& path, bool has_header);

/// Escapes a field per RFC 4180 when needed.
std::string csv_escape(const std::string& field);

/// Streaming writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

}  // namespace csdml
