// Small fixed-size thread pool for data-parallel sweeps.
//
// The software model of the CSD has to sustain the same batch pressure the
// paper's device absorbs from "traffic from millions of users": the engine
// fans classification batches out across cores, and the bench/dataset
// sweeps reuse the same pool. The pool is deliberately minimal — one
// parallel_for primitive with index-granular work stealing — because every
// hot caller is an embarrassingly parallel loop over sequences.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csdml {

class ThreadPool {
 public:
  /// `thread_count` is the total number of executors, including the caller
  /// of parallel_for; 0 picks std::thread::hardware_concurrency(). A pool
  /// of size 1 spawns no workers and runs everything inline.
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors (workers + the calling thread).
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs fn(executor, index) for every index in [0, count). Indices are
  /// claimed atomically, each runs exactly once, and `executor` is in
  /// [0, thread_count()) — callers key per-thread scratch off it (the
  /// calling thread is executor 0). Blocks until every index finished;
  /// if any invocation threw, the first captured exception is rethrown
  /// after the loop drains. Not reentrant.
  ///
  /// Ranges smaller than two indices per executor run inline on the caller
  /// (as executor 0): waking the workers costs more than it buys on the
  /// tiny micro-batches the serving coalescer produces under light load.
  /// On the inline path an exception aborts the remaining range
  /// immediately (sequential-loop semantics).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_main(std::size_t executor);
  void run_indices(std::size_t executor);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_cv_;   ///< signals workers that a job exists
  std::condition_variable done_cv_;   ///< signals the caller that workers drained
  std::uint64_t generation_{0};       ///< bumped once per parallel_for
  bool stopping_{false};
  const std::function<void(std::size_t, std::size_t)>* job_{nullptr};
  std::size_t job_count_{0};
  std::size_t busy_workers_{0};
  std::atomic<std::size_t> next_index_{0};
  std::exception_ptr first_error_;
};

}  // namespace csdml
