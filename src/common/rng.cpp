#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace csdml {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// FNV-1a over a string, used to derive per-subsystem stream seeds.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng Rng::fork(std::string_view stream_name) const {
  std::uint64_t sm = state_[0] ^ rotl(state_[2], 17) ^ fnv1a(stream_name);
  std::array<std::uint64_t, 4> child{};
  for (auto& word : child) word = splitmix64(sm);
  return Rng{child};
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CSDML_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CSDML_REQUIRE(lo <= hi, "uniform_int(lo, hi) needs lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Lemire's rejection-free-in-expectation bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = (0ULL - span) % span;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double log_mean, double log_stddev) {
  return std::exp(normal(log_mean, log_stddev));
}

bool Rng::chance(double probability) { return uniform() < probability; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  CSDML_REQUIRE(!weights.empty(), "weighted_index needs at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    CSDML_REQUIRE(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  CSDML_REQUIRE(total > 0.0, "at least one weight must be positive");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: land on the last bucket
}

}  // namespace csdml
