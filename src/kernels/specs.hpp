// Structural HLS specs for the paper's five kernels (Fig. 2) at each of
// the three optimization levels evaluated in Fig. 3.
//
//   Vanilla     — kernel parallelization only (Section III-C): four
//                 kernel_gates CUs + lookahead kernel_preprocess. Inner
//                 loops keep Vitis' default behaviour: small regular loops
//                 auto-pipeline (gates, preprocess); kernel_hidden_state's
//                 loop, which carries the static item counter and the
//                 conditional final dense layer, schedules sequentially.
//   II          — adds #pragma HLS PIPELINE II=1, UNROLL and
//                 ARRAY_PARTITION complete (Section III-D).
//   FixedPoint  — II plus integer arithmetic at the 10^6 decimal scale;
//                 multiplies map to DSP slices, sigmoid becomes the PLAN
//                 piecewise-linear form and tanh was already softsign.
#pragma once

#include "hls/kernel_spec.hpp"
#include "nn/lstm.hpp"

namespace csdml::kernels {

enum class OptimizationLevel { Vanilla, II, FixedPoint };

const char* optimization_name(OptimizationLevel level);

/// How x_t / gate vectors / h_t move between kernels.
///
/// The paper's deployed design uses memory-mapped AXI masters through the
/// two DDR banks, and notes that "streaming can be easily ported to the
/// kernel implementation for additional acceleration if the FPGA supports
/// it" — KernelLink::Stream models that port: direct AXI-stream FIFOs
/// between kernels, skipping the DDR round-trips entirely (only the
/// off-chip item fetch and the final prediction writeback remain).
enum class KernelLink { AxiMemory, Stream };

/// kernel_preprocess: embedding gather for one item + one copy of the
/// embedding into each gate CU's input buffer.
hls::KernelSpec make_preprocess_spec(const nn::LstmConfig& config,
                                     OptimizationLevel level,
                                     std::uint32_t gate_cu_count,
                                     KernelLink link = KernelLink::AxiMemory);

/// kernel_gates: one compute unit computing one gate vector
/// (hidden_dim outputs, each an (embed+hidden)-wide MAC + activation).
hls::KernelSpec make_gates_spec(const nn::LstmConfig& config,
                                OptimizationLevel level,
                                KernelLink link = KernelLink::AxiMemory);

/// kernel_hidden_state: cell update, softsign, h_t, h_t copies back to the
/// CUs, plus the final dense layer when the sequence completes.
hls::KernelSpec make_hidden_state_spec(const nn::LstmConfig& config,
                                       OptimizationLevel level,
                                       std::uint32_t gate_cu_count,
                                       KernelLink link = KernelLink::AxiMemory);

/// With ARRAY_PARTITION complete + UNROLL the fixed-point gates pipeline
/// accepts a new item every II cycles, so its steady-state per-item cost is
/// the initiation interval rather than the full pipeline latency (this is
/// the quantity the Vitis profile reports, and why the paper's fixed-point
/// gates bar reads 0.00333 us = exactly one 300 MHz cycle).
bool gates_reports_amortized_ii(OptimizationLevel level);

}  // namespace csdml::kernels
