#include "kernels/gru_specs.hpp"

#include "common/error.hpp"

namespace csdml::kernels {

using hls::AxiTransferSpec;
using hls::BufferBinding;
using hls::KernelSpec;
using hls::LocalBufferSpec;
using hls::LoopOp;
using hls::LoopSpec;
using hls::OpKind;

namespace {

constexpr std::uint32_t kWordBytes = 4;
constexpr std::uint32_t kGruCuCount = 3;

nn::LstmConfig as_lstm_dims(const nn::GruConfig& config) {
  // The spec builders only consume the dimensions, which the two models
  // share; reuse the LSTM preprocess builder through this view.
  nn::LstmConfig dims;
  dims.vocab_size = config.vocab_size;
  dims.embed_dim = config.embed_dim;
  dims.hidden_dim = config.hidden_dim;
  return dims;
}

bool optimized(OptimizationLevel level) {
  return level != OptimizationLevel::Vanilla;
}

bool fixed_point(OptimizationLevel level) {
  return level == OptimizationLevel::FixedPoint;
}

}  // namespace

KernelSpec make_gru_preprocess_spec(const nn::GruConfig& config,
                                    OptimizationLevel level, KernelLink link) {
  KernelSpec spec = make_preprocess_spec(as_lstm_dims(config), level,
                                         kGruCuCount, link);
  spec.name = "gru_preprocess";
  return spec;
}

KernelSpec make_gru_gate_spec(const nn::GruConfig& config,
                              OptimizationLevel level, bool candidate_unit,
                              KernelLink link) {
  // Start from the LSTM gate CU (identical MAC structure) and specialise.
  KernelSpec spec = make_gates_spec(as_lstm_dims(config), level, link);
  spec.name = candidate_unit ? "gru_candidate_cu" : "gru_gate_cu";
  if (candidate_unit) {
    // The candidate consumes r ⊙ h_prev: one elementwise multiply pass
    // before the MAC loop (DATAFLOW overlaps it with the output write).
    LoopSpec reset;
    reset.name = "reset_apply";
    reset.trip_count = config.hidden_dim;
    reset.body_ops = {fixed_point(level) ? LoopOp{OpKind::IntMul, 1}
                                         : LoopOp{OpKind::FloatMul, 1}};
    reset.buffer_accesses = 3;  // read r, read h, write rh
    reset.binding = BufferBinding::Bram;
    reset.memory_ports = 2;
    if (optimized(level)) {
      reset.pragmas.pipeline = true;
      reset.pragmas.target_ii = 1;
      reset.pragmas.array_partition_complete = fixed_point(level);
    }
    spec.loops.insert(spec.loops.begin(), reset);
  }
  return spec;
}

KernelSpec make_gru_state_spec(const nn::GruConfig& config,
                               OptimizationLevel level, KernelLink link) {
  KernelSpec spec;
  spec.name = "gru_state";

  spec.buffers.push_back(LocalBufferSpec{
      .name = "dense_weights",
      .size = Bytes{static_cast<std::uint64_t>(config.hidden_dim + 1) * kWordBytes},
      .binding = BufferBinding::Bram});

  LoopSpec update;
  update.name = "state_update";
  update.trip_count = config.hidden_dim;
  if (fixed_point(level)) {
    // h' = (1-z) h + z g: two DSP multiplies, two adds — no divider (the
    // GRU has no second cell activation, unlike the LSTM's softsign(C)).
    update.body_ops = {LoopOp{OpKind::IntMul, 2}, LoopOp{OpKind::IntAdd, 2}};
  } else {
    update.body_ops = {LoopOp{OpKind::FloatMul, 2}, LoopOp{OpKind::FloatAdd, 2}};
  }
  // Reads z, g, h; writes h (the r CU consumed h directly).
  update.buffer_accesses = 4;
  update.binding = BufferBinding::Bram;
  update.memory_ports = 2;
  if (optimized(level)) {
    update.pragmas.pipeline = true;
    update.pragmas.target_ii = 1;
    update.pragmas.array_partition_complete = fixed_point(level);
  }
  spec.loops.push_back(update);

  const Bytes vec_bytes{static_cast<std::uint64_t>(config.hidden_dim) * kWordBytes};
  if (link == KernelLink::AxiMemory) {
    for (std::uint32_t cu = 0; cu < kGruCuCount; ++cu) {
      spec.transfers.push_back(
          AxiTransferSpec{"gate_in_cu" + std::to_string(cu), vec_bytes, 1.0});
      spec.transfers.push_back(
          AxiTransferSpec{"h_copy_cu" + std::to_string(cu), vec_bytes, 1.0});
    }
  }
  spec.transfers.push_back(AxiTransferSpec{"prediction_out", Bytes{kWordBytes}, 1.0});
  return spec;
}

GruCsdEstimate estimate_gru_csd(const hls::HlsCostModel& model,
                                const nn::GruConfig& config,
                                OptimizationLevel level, KernelLink link) {
  const Frequency clock = model.clock();
  GruCsdEstimate estimate;

  const KernelSpec preprocess = make_gru_preprocess_spec(config, level, link);
  estimate.preprocess = clock.duration_of(model.analyze(preprocess).total);

  const KernelSpec gate = make_gru_gate_spec(config, level, false, link);
  const KernelSpec candidate = make_gru_gate_spec(config, level, true, link);
  if (gates_reports_amortized_ii(level)) {
    // Same steady-state argument as the LSTM's fixed-point gates: the
    // slowest CU's initiation interval bounds the per-item cost.
    std::uint64_t worst_ii = 1;
    for (const KernelSpec* spec : {&gate, &candidate}) {
      const auto report = model.analyze(*spec);
      for (const auto& loop : report.loops) {
        worst_ii = std::max(worst_ii, loop.achieved_ii);
      }
    }
    estimate.gates = clock.duration_of(Cycles{worst_ii});
  } else {
    estimate.gates =
        std::max(clock.duration_of(model.analyze(gate).total),
                 clock.duration_of(model.analyze(candidate).total));
  }

  const KernelSpec state = make_gru_state_spec(config, level, link);
  estimate.state = clock.duration_of(model.analyze(state).total);

  estimate.resources += hls::estimate_resources(preprocess);
  estimate.resources += hls::estimate_resources(gate) * 2;  // z and r CUs
  estimate.resources += hls::estimate_resources(candidate);
  estimate.resources += hls::estimate_resources(state);
  return estimate;
}

}  // namespace csdml::kernels
