// Fixed-point GRU datapath — the functional half of the GRU port, using
// the same arithmetic the deployed LSTM build uses: the paper's 10^6
// decimal scaling with post-product correction, PLAN sigmoid for the z/r
// gates, softsign for the candidate.
//
// Like the LSTM datapaths, `infer` runs the fused table-driven fast path
// (precomputed vocab × 3·hidden `bias + W_x·x_token` table, packed
// hidden × 3·hidden recurrent block, reusable scratch); integer arithmetic
// makes it bit-identical to `infer_reference`, the seed's naive loop.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fixed/scaled_fixed.hpp"
#include "nn/gru.hpp"

namespace csdml::kernels {

/// Reusable per-thread scratch for FixedGruDatapath::infer.
struct GruFixedScratch {
  std::vector<std::int64_t> pre;  ///< 3·hidden raw pre-activations
  std::vector<std::int64_t> z;
  std::vector<std::int64_t> r;
  std::vector<std::int64_t> h;
};

class FixedGruDatapath {
 public:
  FixedGruDatapath(const nn::GruConfig& config, const nn::GruParams& params,
                   std::int64_t scale = fixedpt::kPaperScale);

  const nn::GruConfig& config() const { return config_; }
  std::int64_t scale() const { return scale_; }

  /// Forward pass -> ransomware probability (fused table-driven path).
  double infer(nn::TokenSpan sequence) const;
  double infer(nn::TokenSpan sequence, GruFixedScratch& scratch) const;
  /// The seed's unoptimized loop — the parity oracle.
  double infer_reference(nn::TokenSpan sequence) const;
  int predict(nn::TokenSpan sequence) const {
    return infer(sequence) >= 0.5 ? 1 : 0;
  }

 private:
  using Fx = fixedpt::ScaledFixed;
  Fx fx(double v) const { return Fx::from_double(v, scale_); }
  void build_tables();

  nn::GruConfig config_;
  std::int64_t scale_;
  std::vector<std::vector<Fx>> embedding_rows_;
  std::array<std::vector<std::vector<Fx>>, nn::kNumGruGates> w_x_cols_;
  std::array<std::vector<std::vector<Fx>>, nn::kNumGruGates> w_h_cols_;
  std::array<std::vector<Fx>, nn::kNumGruGates> bias_;
  std::vector<Fx> dense_w_;
  Fx dense_b_;
  // Fused-path layouts (raw integers at scale_).
  std::vector<std::int64_t> token_table_raw_;  ///< vocab × 3·hidden
  std::vector<std::int64_t> w_h_packed_raw_;   ///< hidden × 3·hidden
  std::vector<std::int64_t> dense_w_raw_;
};

}  // namespace csdml::kernels
