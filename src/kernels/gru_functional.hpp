// Fixed-point GRU datapath — the functional half of the GRU port, using
// the same arithmetic the deployed LSTM build uses: the paper's 10^6
// decimal scaling with post-product correction, PLAN sigmoid for the z/r
// gates, softsign for the candidate.
#pragma once

#include <array>
#include <vector>

#include "fixed/scaled_fixed.hpp"
#include "nn/gru.hpp"

namespace csdml::kernels {

class FixedGruDatapath {
 public:
  FixedGruDatapath(const nn::GruConfig& config, const nn::GruParams& params,
                   std::int64_t scale = fixedpt::kPaperScale);

  const nn::GruConfig& config() const { return config_; }
  std::int64_t scale() const { return scale_; }

  /// Forward pass -> ransomware probability.
  double infer(const nn::Sequence& sequence) const;
  int predict(const nn::Sequence& sequence) const {
    return infer(sequence) >= 0.5 ? 1 : 0;
  }

 private:
  using Fx = fixedpt::ScaledFixed;
  Fx fx(double v) const { return Fx::from_double(v, scale_); }

  nn::GruConfig config_;
  std::int64_t scale_;
  std::vector<std::vector<Fx>> embedding_rows_;
  std::array<std::vector<std::vector<Fx>>, nn::kNumGruGates> w_x_cols_;
  std::array<std::vector<std::vector<Fx>>, nn::kNumGruGates> w_h_cols_;
  std::array<std::vector<Fx>, nn::kNumGruGates> bias_;
  std::vector<Fx> dense_w_;
  Fx dense_b_;
};

}  // namespace csdml::kernels
