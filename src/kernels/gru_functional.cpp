#include "kernels/gru_functional.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "fixed/activations.hpp"

namespace csdml::kernels {

FixedGruDatapath::FixedGruDatapath(const nn::GruConfig& config,
                                   const nn::GruParams& params,
                                   std::int64_t scale)
    : config_(config), scale_(scale) {
  CSDML_REQUIRE(scale > 0, "scale must be positive");
  const std::size_t hidden = config.hidden_dim;
  const std::size_t embed = config.embed_dim;

  embedding_rows_.resize(static_cast<std::size_t>(config.vocab_size));
  for (std::size_t r = 0; r < embedding_rows_.size(); ++r) {
    embedding_rows_[r].reserve(embed);
    for (std::size_t c = 0; c < embed; ++c) {
      embedding_rows_[r].push_back(fx(params.embedding(r, c)));
    }
  }
  for (std::size_t g = 0; g < nn::kNumGruGates; ++g) {
    w_x_cols_[g].resize(hidden);
    w_h_cols_[g].resize(hidden);
    bias_[g].reserve(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      w_x_cols_[g][j].reserve(embed);
      for (std::size_t i = 0; i < embed; ++i) {
        w_x_cols_[g][j].push_back(fx(params.w_x[g](i, j)));
      }
      w_h_cols_[g][j].reserve(hidden);
      for (std::size_t i = 0; i < hidden; ++i) {
        w_h_cols_[g][j].push_back(fx(params.w_h[g](i, j)));
      }
      bias_[g].push_back(fx(params.bias[g][j]));
    }
  }
  dense_w_.reserve(hidden);
  for (std::size_t j = 0; j < hidden; ++j) dense_w_.push_back(fx(params.dense_w[j]));
  dense_b_ = fx(params.dense_b);
  build_tables();
}

void FixedGruDatapath::build_tables() {
  const std::size_t hidden = config_.hidden_dim;
  const std::size_t embed = config_.embed_dim;
  const std::size_t vocab = static_cast<std::size_t>(config_.vocab_size);
  const std::size_t gate_width = nn::kNumGruGates * hidden;

  token_table_raw_.assign(vocab * gate_width, 0);
  for (std::size_t t = 0; t < vocab; ++t) {
    std::int64_t* row = token_table_raw_.data() + t * gate_width;
    const std::vector<Fx>& x = embedding_rows_[t];
    for (std::size_t g = 0; g < nn::kNumGruGates; ++g) {
      std::int64_t* seg = row + g * hidden;
      for (std::size_t j = 0; j < hidden; ++j) {
        std::int64_t acc = bias_[g][j].raw();
        const std::vector<Fx>& wx = w_x_cols_[g][j];
        for (std::size_t i = 0; i < embed; ++i) {
          acc += Fx::mul_raw(wx[i].raw(), x[i].raw(), scale_);
        }
        seg[j] = acc;
      }
    }
  }

  w_h_packed_raw_.assign(hidden * gate_width, 0);
  for (std::size_t g = 0; g < nn::kNumGruGates; ++g) {
    for (std::size_t j = 0; j < hidden; ++j) {
      const std::vector<Fx>& wh = w_h_cols_[g][j];
      for (std::size_t i = 0; i < hidden; ++i) {
        w_h_packed_raw_[i * gate_width + g * hidden + j] = wh[i].raw();
      }
    }
  }

  dense_w_raw_.resize(hidden);
  for (std::size_t j = 0; j < hidden; ++j) dense_w_raw_[j] = dense_w_[j].raw();
}

double FixedGruDatapath::infer_reference(nn::TokenSpan sequence) const {
  CSDML_REQUIRE(!sequence.empty(), "empty sequence");
  const std::size_t hidden = config_.hidden_dim;
  const Fx zero = Fx::from_raw(0, scale_);
  const Fx one = fx(1.0);
  std::vector<Fx> h(hidden, zero);
  std::vector<Fx> z(hidden, zero);
  std::vector<Fx> r(hidden, zero);
  std::vector<Fx> g(hidden, zero);

  for (const nn::TokenId token : sequence) {
    CSDML_REQUIRE(token >= 0 && token < config_.vocab_size, "token range");
    const std::vector<Fx>& x = embedding_rows_[static_cast<std::size_t>(token)];

    // z and r gates (PLAN sigmoid).
    for (const std::size_t gate : {nn::kUpdate, nn::kReset}) {
      auto& out = gate == nn::kUpdate ? z : r;
      for (std::size_t j = 0; j < hidden; ++j) {
        Fx acc = bias_[gate][j];
        const auto& wx = w_x_cols_[gate][j];
        for (std::size_t i = 0; i < x.size(); ++i) acc += wx[i] * x[i];
        const auto& wh = w_h_cols_[gate][j];
        for (std::size_t i = 0; i < hidden; ++i) acc += wh[i] * h[i];
        out[j] = fixedpt::sigmoid_fixed(acc);
      }
    }
    // Candidate over r ⊙ h (softsign).
    for (std::size_t j = 0; j < hidden; ++j) {
      Fx acc = bias_[nn::kCandidateGate][j];
      const auto& wx = w_x_cols_[nn::kCandidateGate][j];
      for (std::size_t i = 0; i < x.size(); ++i) acc += wx[i] * x[i];
      const auto& wh = w_h_cols_[nn::kCandidateGate][j];
      for (std::size_t i = 0; i < hidden; ++i) acc += wh[i] * (r[i] * h[i]);
      g[j] = fixedpt::softsign_fixed(acc);
    }
    // h' = (1 - z) h + z g.
    for (std::size_t j = 0; j < hidden; ++j) {
      h[j] = (one - z[j]) * h[j] + z[j] * g[j];
    }
  }

  Fx logit = dense_b_;
  for (std::size_t j = 0; j < hidden; ++j) logit += dense_w_[j] * h[j];
  return fixedpt::sigmoid_fixed(logit).to_double();
}

double FixedGruDatapath::infer(nn::TokenSpan sequence) const {
  GruFixedScratch scratch;
  return infer(sequence, scratch);
}

double FixedGruDatapath::infer(nn::TokenSpan sequence,
                               GruFixedScratch& scratch) const {
  CSDML_REQUIRE(!sequence.empty(), "empty sequence");
  const std::size_t hidden = config_.hidden_dim;
  const std::int64_t scale = scale_;
  const fixedpt::InvariantScale div(scale);
  const std::int64_t one_raw = fx(1.0).raw();
  const std::size_t gate_width = nn::kNumGruGates * hidden;
  scratch.pre.resize(gate_width);
  scratch.z.resize(hidden);
  scratch.r.resize(hidden);
  scratch.h.assign(hidden, 0);
  std::int64_t* pre = scratch.pre.data();
  std::int64_t* z = scratch.z.data();
  std::int64_t* r = scratch.r.data();
  std::int64_t* h = scratch.h.data();

  for (const nn::TokenId token : sequence) {
    CSDML_REQUIRE(token >= 0 && token < config_.vocab_size, "token range");
    const std::int64_t* row =
        token_table_raw_.data() + static_cast<std::size_t>(token) * gate_width;
    std::copy(row, row + gate_width, pre);

    // Recurrent half for z and r (the candidate's recurrent term needs r,
    // computed below, so its columns wait for the second pass).
    const std::size_t zr_width = 2 * hidden;
    for (std::size_t i = 0; i < hidden; ++i) {
      const std::int64_t hi = h[i];
      if (hi == 0) continue;  // exact: skipped products are exactly zero
      const std::int64_t* wrow = w_h_packed_raw_.data() + i * gate_width;
      for (std::size_t col = 0; col < zr_width; ++col) {
        pre[col] += div.mul(wrow[col], hi);
      }
    }
    for (std::size_t j = 0; j < hidden; ++j) {
      z[j] = fixedpt::sigmoid_fixed(Fx::from_raw(pre[nn::kUpdate * hidden + j],
                                                 scale))
                 .raw();
      r[j] = fixedpt::sigmoid_fixed(Fx::from_raw(pre[nn::kReset * hidden + j],
                                                 scale))
                 .raw();
    }
    // Candidate recurrent half over r ⊙ h.
    std::int64_t* cand = pre + nn::kCandidateGate * hidden;
    for (std::size_t i = 0; i < hidden; ++i) {
      const std::int64_t rh = div.mul(r[i], h[i]);
      if (rh == 0) continue;
      const std::int64_t* wrow =
          w_h_packed_raw_.data() + i * gate_width + nn::kCandidateGate * hidden;
      for (std::size_t j = 0; j < hidden; ++j) {
        cand[j] += div.mul(wrow[j], rh);
      }
    }
    // h' = (1 - z) h + z g.
    for (std::size_t j = 0; j < hidden; ++j) {
      const std::int64_t g_act =
          fixedpt::softsign_fixed(Fx::from_raw(cand[j], scale)).raw();
      h[j] = div.mul(one_raw - z[j], h[j]) + div.mul(z[j], g_act);
    }
  }

  std::int64_t logit = dense_b_.raw();
  for (std::size_t j = 0; j < hidden; ++j) {
    logit += div.mul(dense_w_raw_[j], h[j]);
  }
  return fixedpt::sigmoid_fixed(Fx::from_raw(logit, scale)).to_double();
}

}  // namespace csdml::kernels
