#include "kernels/gru_functional.hpp"

#include "common/error.hpp"
#include "fixed/activations.hpp"

namespace csdml::kernels {

FixedGruDatapath::FixedGruDatapath(const nn::GruConfig& config,
                                   const nn::GruParams& params,
                                   std::int64_t scale)
    : config_(config), scale_(scale) {
  CSDML_REQUIRE(scale > 0, "scale must be positive");
  const std::size_t hidden = config.hidden_dim;
  const std::size_t embed = config.embed_dim;

  embedding_rows_.resize(static_cast<std::size_t>(config.vocab_size));
  for (std::size_t r = 0; r < embedding_rows_.size(); ++r) {
    embedding_rows_[r].reserve(embed);
    for (std::size_t c = 0; c < embed; ++c) {
      embedding_rows_[r].push_back(fx(params.embedding(r, c)));
    }
  }
  for (std::size_t g = 0; g < nn::kNumGruGates; ++g) {
    w_x_cols_[g].resize(hidden);
    w_h_cols_[g].resize(hidden);
    bias_[g].reserve(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      w_x_cols_[g][j].reserve(embed);
      for (std::size_t i = 0; i < embed; ++i) {
        w_x_cols_[g][j].push_back(fx(params.w_x[g](i, j)));
      }
      w_h_cols_[g][j].reserve(hidden);
      for (std::size_t i = 0; i < hidden; ++i) {
        w_h_cols_[g][j].push_back(fx(params.w_h[g](i, j)));
      }
      bias_[g].push_back(fx(params.bias[g][j]));
    }
  }
  dense_w_.reserve(hidden);
  for (std::size_t j = 0; j < hidden; ++j) dense_w_.push_back(fx(params.dense_w[j]));
  dense_b_ = fx(params.dense_b);
}

double FixedGruDatapath::infer(const nn::Sequence& sequence) const {
  CSDML_REQUIRE(!sequence.empty(), "empty sequence");
  const std::size_t hidden = config_.hidden_dim;
  const Fx zero = Fx::from_raw(0, scale_);
  const Fx one = fx(1.0);
  std::vector<Fx> h(hidden, zero);
  std::vector<Fx> z(hidden, zero);
  std::vector<Fx> r(hidden, zero);
  std::vector<Fx> g(hidden, zero);

  for (const nn::TokenId token : sequence) {
    CSDML_REQUIRE(token >= 0 && token < config_.vocab_size, "token range");
    const std::vector<Fx>& x = embedding_rows_[static_cast<std::size_t>(token)];

    // z and r gates (PLAN sigmoid).
    for (const std::size_t gate : {nn::kUpdate, nn::kReset}) {
      auto& out = gate == nn::kUpdate ? z : r;
      for (std::size_t j = 0; j < hidden; ++j) {
        Fx acc = bias_[gate][j];
        const auto& wx = w_x_cols_[gate][j];
        for (std::size_t i = 0; i < x.size(); ++i) acc += wx[i] * x[i];
        const auto& wh = w_h_cols_[gate][j];
        for (std::size_t i = 0; i < hidden; ++i) acc += wh[i] * h[i];
        out[j] = fixedpt::sigmoid_fixed(acc);
      }
    }
    // Candidate over r ⊙ h (softsign).
    for (std::size_t j = 0; j < hidden; ++j) {
      Fx acc = bias_[nn::kCandidateGate][j];
      const auto& wx = w_x_cols_[nn::kCandidateGate][j];
      for (std::size_t i = 0; i < x.size(); ++i) acc += wx[i] * x[i];
      const auto& wh = w_h_cols_[nn::kCandidateGate][j];
      for (std::size_t i = 0; i < hidden; ++i) acc += wh[i] * (r[i] * h[i]);
      g[j] = fixedpt::softsign_fixed(acc);
    }
    // h' = (1 - z) h + z g.
    for (std::size_t j = 0; j < hidden; ++j) {
      h[j] = (one - z[j]) * h[j] + z[j] * g[j];
    }
  }

  Fx logit = dense_b_;
  for (std::size_t j = 0; j < hidden; ++j) logit += dense_w_[j] * h[j];
  return fixedpt::sigmoid_fixed(logit).to_double();
}

}  // namespace csdml::kernels
