// HLS kernel specs for a GRU port of the in-storage classifier.
//
// The model-selection ablation (bench_ablation_model) shows a GRU matches
// the LSTM's accuracy with 3 gates instead of 4. These specs answer the
// deployment half of that question: what the GRU variant would cost on
// the same SmartSSD — three gate compute units instead of four, an extra
// elementwise reset stage feeding the candidate CU, and a cheaper state
// kernel (interpolation, no second cell activation).
#pragma once

#include "hls/cost_model.hpp"
#include "hls/kernel_spec.hpp"
#include "hls/resources.hpp"
#include "kernels/specs.hpp"
#include "nn/gru.hpp"

namespace csdml::kernels {

/// kernel_preprocess is unchanged except that it fans x_t out to three CUs.
hls::KernelSpec make_gru_preprocess_spec(const nn::GruConfig& config,
                                         OptimizationLevel level,
                                         KernelLink link = KernelLink::AxiMemory);

/// One gate CU (z / r / candidate). The candidate CU additionally computes
/// r ⊙ h_prev before its MACs (one extra elementwise multiply stage).
hls::KernelSpec make_gru_gate_spec(const nn::GruConfig& config,
                                   OptimizationLevel level, bool candidate_unit,
                                   KernelLink link = KernelLink::AxiMemory);

/// State kernel: h' = (1-z) ⊙ h + z ⊙ g plus the dense head — two
/// multiplies and two adds per element, no cell activation.
hls::KernelSpec make_gru_state_spec(const nn::GruConfig& config,
                                    OptimizationLevel level,
                                    KernelLink link = KernelLink::AxiMemory);

struct GruCsdEstimate {
  Duration preprocess;
  Duration gates;   ///< max over the 3 CUs (candidate is the slowest)
  Duration state;
  hls::ResourceEstimate resources;  ///< whole design (1 + 3 + 1 kernels)

  Duration total() const { return preprocess + gates + state; }
};

/// Per-item timing + resource estimate of the full GRU design.
GruCsdEstimate estimate_gru_csd(const hls::HlsCostModel& model,
                                const nn::GruConfig& config,
                                OptimizationLevel level,
                                KernelLink link = KernelLink::AxiMemory);

}  // namespace csdml::kernels
