// Functional (value-level) implementations of the five kernels.
//
// The engine pairs these with the HLS cost model: the cost model says how
// long each kernel takes; these say what it computes. The float datapath
// reproduces the offline model bit-for-bit (same operation order as
// nn::LstmClassifier); the fixed datapath runs the paper's 10^6-scaled
// integer arithmetic, so tests can quantify exactly how much accuracy the
// fixed-point optimization costs.
//
// Two implementations coexist per datapath:
//
//   - the *reference* decomposition (preprocess / gates / hidden_state /
//     infer_reference): naive per-token loops that mirror Fig. 2 stage by
//     stage. Kept as the parity oracle and for stage-level tests.
//   - the *fused* path (`infer`): since x_t is always one of vocab_size
//     embedding rows, `bias + W_x·x_t` is precomputed per token into a
//     vocab_size × 4·hidden table at weight-staging time (the software
//     analogue of widening kernel_preprocess to emit gate pre-activations),
//     the four per-gate recurrent matrices are packed into one row-major
//     hidden × 4·hidden block walked with unit stride, and all per-token
//     state lives in a reusable scratch — no allocation after warm-up.
//     Results are bit-identical to the reference (same per-accumulator
//     operation order for float; integer arithmetic is exact for fixed).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fixed/scaled_fixed.hpp"
#include "nn/lstm.hpp"

namespace csdml::kernels {

/// Output of the four parallel kernel_gates CUs for one item.
struct GateVectors {
  std::array<nn::Vector, nn::kNumGates> act;
};

/// Reusable per-thread scratch for FloatDatapath::infer. Sized lazily on
/// first use; reusing one across calls makes the hot loop allocation-free.
struct FloatScratch {
  nn::Vector pre;  ///< 4·hidden gate pre-activations, then activations
  nn::Vector c;
  nn::Vector h;
};

/// Float datapath: exactly the offline model's arithmetic, reorganised
/// into the kernel decomposition of Fig. 2.
class FloatDatapath {
 public:
  FloatDatapath(const nn::LstmConfig& config, const nn::LstmParams& params);

  const nn::LstmConfig& config() const { return config_; }

  /// kernel_preprocess: one-hot × embedding matrix.
  nn::Vector preprocess(nn::TokenId token) const;
  /// kernel_gates ×4: gate vectors from x_t and h_{t-1}.
  GateVectors gates(const nn::Vector& x, const nn::Vector& h) const;
  /// kernel_hidden_state: updates c and h in place from the gate vectors.
  void hidden_state(const GateVectors& gates, nn::Vector& c, nn::Vector& h) const;
  /// Final fully-connected layer + sigmoid.
  double dense(const nn::Vector& h) const;

  /// Whole-sequence forward pass through the fused table-driven kernels.
  double infer(nn::TokenSpan sequence) const;
  /// Same, reusing caller-owned scratch (allocation-free once warm).
  double infer(nn::TokenSpan sequence, FloatScratch& scratch) const;

  /// The seed's unoptimized stage-by-stage loop — the parity/bench oracle.
  double infer_reference(nn::TokenSpan sequence) const;

  /// vocab_size × 4·hidden precomputed `bias + W_x·x_token` table.
  const nn::Matrix& token_gate_table() const { return token_table_; }

 private:
  void build_tables();
  void ensure_scratch(FloatScratch& scratch) const;

  nn::LstmConfig config_;
  const nn::LstmParams* params_;
  nn::LstmParams owned_;
  nn::Matrix token_table_;  ///< vocab × 4·hidden: bias + W_x·embedding row
  nn::Matrix w_h_packed_;   ///< hidden × 4·hidden: w_h[g](i,j) at (i, g·hidden+j)
};

using FixedVector = std::vector<fixedpt::ScaledFixed>;

struct FixedGateVectors {
  std::array<FixedVector, nn::kNumGates> act;
};

/// Reusable per-thread scratch for FixedDatapath::infer (raw-integer
/// domain; every element carries the datapath's single scale implicitly).
struct FixedScratch {
  std::vector<std::int64_t> pre;  ///< 4·hidden raw pre-activations/activations
  std::vector<std::int64_t> c;
  std::vector<std::int64_t> h;
};

/// Fixed datapath: all parameters pre-scaled by `scale` (paper: 10^6)
/// at construction, every multiply corrected per the paper's scheme.
class FixedDatapath {
 public:
  FixedDatapath(const nn::LstmConfig& config, const nn::LstmParams& params,
                std::int64_t scale = fixedpt::kPaperScale);

  const nn::LstmConfig& config() const { return config_; }
  std::int64_t scale() const { return scale_; }

  FixedVector preprocess(nn::TokenId token) const;
  FixedGateVectors gates(const FixedVector& x, const FixedVector& h) const;
  void hidden_state(const FixedGateVectors& gates, FixedVector& c,
                    FixedVector& h) const;
  double dense(const FixedVector& h) const;

  /// Fused table-driven forward pass; bit-identical to infer_reference.
  double infer(nn::TokenSpan sequence) const;
  double infer(nn::TokenSpan sequence, FixedScratch& scratch) const;

  /// The seed's unoptimized stage-by-stage loop — the parity/bench oracle.
  double infer_reference(nn::TokenSpan sequence) const;

 private:
  fixedpt::ScaledFixed fx(double v) const {
    return fixedpt::ScaledFixed::from_double(v, scale_);
  }
  void build_tables();
  void ensure_scratch(FixedScratch& scratch) const;

  nn::LstmConfig config_;
  std::int64_t scale_;
  // Pre-scaled parameters, laid out like LstmParams.
  std::vector<FixedVector> embedding_rows_;
  std::array<std::vector<FixedVector>, nn::kNumGates> w_x_cols_;  // [gate][col]=column
  std::array<std::vector<FixedVector>, nn::kNumGates> w_h_cols_;
  std::array<FixedVector, nn::kNumGates> bias_;
  FixedVector dense_w_;
  fixedpt::ScaledFixed dense_b_;
  // Fused-path layouts (raw integers at scale_).
  std::vector<std::int64_t> token_table_raw_;  ///< vocab × 4·hidden
  std::vector<std::int64_t> w_h_packed_raw_;   ///< hidden × 4·hidden
  std::vector<std::int64_t> dense_w_raw_;      ///< hidden
};

}  // namespace csdml::kernels
