// Functional (value-level) implementations of the five kernels.
//
// The engine pairs these with the HLS cost model: the cost model says how
// long each kernel takes; these say what it computes. The float datapath
// reproduces the offline model bit-for-bit (same operation order as
// nn::LstmClassifier); the fixed datapath runs the paper's 10^6-scaled
// integer arithmetic, so tests can quantify exactly how much accuracy the
// fixed-point optimization costs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fixed/scaled_fixed.hpp"
#include "nn/lstm.hpp"

namespace csdml::kernels {

/// Output of the four parallel kernel_gates CUs for one item.
struct GateVectors {
  std::array<nn::Vector, nn::kNumGates> act;
};

/// Float datapath: exactly the offline model's arithmetic, reorganised
/// into the kernel decomposition of Fig. 2.
class FloatDatapath {
 public:
  FloatDatapath(const nn::LstmConfig& config, const nn::LstmParams& params);

  const nn::LstmConfig& config() const { return config_; }

  /// kernel_preprocess: one-hot × embedding matrix.
  nn::Vector preprocess(nn::TokenId token) const;
  /// kernel_gates ×4: gate vectors from x_t and h_{t-1}.
  GateVectors gates(const nn::Vector& x, const nn::Vector& h) const;
  /// kernel_hidden_state: updates c and h in place from the gate vectors.
  void hidden_state(const GateVectors& gates, nn::Vector& c, nn::Vector& h) const;
  /// Final fully-connected layer + sigmoid.
  double dense(const nn::Vector& h) const;

  /// Whole-sequence forward pass through the kernel decomposition.
  double infer(const nn::Sequence& sequence) const;

 private:
  nn::LstmConfig config_;
  const nn::LstmParams* params_;
  nn::LstmParams owned_;
};

using FixedVector = std::vector<fixedpt::ScaledFixed>;

struct FixedGateVectors {
  std::array<FixedVector, nn::kNumGates> act;
};

/// Fixed datapath: all parameters pre-scaled by `scale` (paper: 10^6)
/// at construction, every multiply corrected per the paper's scheme.
class FixedDatapath {
 public:
  FixedDatapath(const nn::LstmConfig& config, const nn::LstmParams& params,
                std::int64_t scale = fixedpt::kPaperScale);

  const nn::LstmConfig& config() const { return config_; }
  std::int64_t scale() const { return scale_; }

  FixedVector preprocess(nn::TokenId token) const;
  FixedGateVectors gates(const FixedVector& x, const FixedVector& h) const;
  void hidden_state(const FixedGateVectors& gates, FixedVector& c,
                    FixedVector& h) const;
  double dense(const FixedVector& h) const;

  double infer(const nn::Sequence& sequence) const;

 private:
  fixedpt::ScaledFixed fx(double v) const {
    return fixedpt::ScaledFixed::from_double(v, scale_);
  }

  nn::LstmConfig config_;
  std::int64_t scale_;
  // Pre-scaled parameters, laid out like LstmParams.
  std::vector<FixedVector> embedding_rows_;
  std::array<std::vector<FixedVector>, nn::kNumGates> w_x_cols_;  // [gate][col]=column
  std::array<std::vector<FixedVector>, nn::kNumGates> w_h_cols_;
  std::array<FixedVector, nn::kNumGates> bias_;
  FixedVector dense_w_;
  fixedpt::ScaledFixed dense_b_;
};

}  // namespace csdml::kernels
