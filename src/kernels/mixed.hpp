// Mixed-precision inference datapaths — the extension the paper's
// Limitations section calls for: "performing operations in lower precision
// where high precision is not necessary, and in higher precision where
// greater accuracy is required. As such, exploring mixed precision
// alternatives on CSDs would be a notable endeavor."
//
// The natural split in this design: the gate MACs (99% of the arithmetic,
// all of the DSP pressure) can run in a narrow binary Q format whose
// operands fit a single DSP48 multiplier, while the recurrent cell state —
// where rounding errors accumulate across all 100 timesteps — keeps a wide
// format. Activations use the same exp-free forms as the deployed design
// (PLAN sigmoid, softsign), implemented directly in Q arithmetic (the PLAN
// coefficients 1/4, 1/8, 1/32, 5/8, 27/32 are exact binary fractions).
#pragma once

#include <memory>
#include <string>

#include "nn/lstm.hpp"

namespace csdml::kernels {

/// Type-erased fixed/mixed inference path.
class IQuantizedInference {
 public:
  virtual ~IQuantizedInference() = default;
  /// Forward pass -> ransomware probability.
  virtual double infer(nn::TokenSpan sequence) const = 0;
  /// Human-readable description of the arithmetic, e.g. "Q16 gates / Q24 state".
  virtual std::string describe() const = 0;
};

enum class PrecisionPreset {
  UniformQ10,        ///< aggressive: ~1e-3 resolution everywhere
  UniformQ16,        ///< single-DSP multipliers everywhere
  UniformQ24,        ///< wide: ~6e-8 resolution everywhere (2 DSPs/MAC)
  GatesQ16StateQ24,  ///< the mixed design: narrow MACs, wide recurrence
};

const char* precision_name(PrecisionPreset preset);

/// Builds the datapath for a preset.
std::unique_ptr<IQuantizedInference> make_mixed_datapath(
    const nn::LstmConfig& config, const nn::LstmParams& params,
    PrecisionPreset preset);

/// DSP slices one multiply-accumulate costs under the preset's *gate*
/// format (18x27-bit DSP48E2: operands up to Q16 fit one slice; Q24 needs
/// a cascade of two).
std::uint32_t dsp_per_gate_mac(PrecisionPreset preset);

}  // namespace csdml::kernels
