#include "kernels/mixed.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"
#include "fixed/qfixed.hpp"

namespace csdml::kernels {

namespace {

using fixedpt::QFixed;

/// Exact-raw conversion between Q formats (arithmetic shift).
template <typename QTo, typename QFrom>
QTo convert(QFrom value) {
  constexpr int shift = QTo::kFracBits - QFrom::kFracBits;
  if constexpr (shift >= 0) {
    return QTo::from_raw(value.raw() << shift);
  } else {
    // Round to nearest on narrowing.
    const std::int64_t half = std::int64_t{1} << (-shift - 1);
    return QTo::from_raw((value.raw() + (value.raw() >= 0 ? half : -half)) >>
                         (-shift));
  }
}

/// PLAN sigmoid in pure Q arithmetic (coefficients are exact binary).
template <typename Q>
Q sigmoid_plan_q(Q x) {
  const std::int64_t one = Q::kOne;
  const std::int64_t mag = std::abs(x.raw());
  std::int64_t half;
  if (mag >= 5 * one) {
    half = one;
  } else if (8 * mag >= 19 * one) {  // |x| >= 2.375
    half = mag / 32 + (27 * one) / 32;
  } else if (mag >= one) {
    half = mag / 8 + (5 * one) / 8;
  } else {
    half = mag / 4 + one / 2;
  }
  return Q::from_raw(x.raw() >= 0 ? half : one - half);
}

/// softsign in pure Q arithmetic: raw * one / (|raw| + one).
template <typename Q>
Q softsign_q(Q x) {
  const std::int64_t one = Q::kOne;
  const std::int64_t raw = x.raw();
  const std::int64_t mag = raw < 0 ? -raw : raw;
  const __int128 numerator = static_cast<__int128>(raw) * one;
  const __int128 denominator = static_cast<__int128>(mag) + one;
  const __int128 half = denominator / 2;
  const __int128 adjusted = numerator >= 0 ? numerator + half : numerator - half;
  return Q::from_raw(static_cast<std::int64_t>(adjusted / denominator));
}

template <typename GateQ, typename StateQ>
class MixedDatapath final : public IQuantizedInference {
 public:
  MixedDatapath(const nn::LstmConfig& config, const nn::LstmParams& params,
                std::string description)
      : config_(config), description_(std::move(description)) {
    const std::size_t hidden = config.hidden_dim;
    const std::size_t embed = config.embed_dim;
    const std::size_t gate_width = nn::kNumGates * hidden;

    // Same fusion as the deployed datapaths: x_t is one of vocab_size
    // embedding rows, so `bias + W_x·x_t` is a per-token constant —
    // precompute it once in the narrow gate format (integer arithmetic
    // keeps this exactly the reference accumulation).
    std::vector<std::vector<GateQ>> w_x_cols(gate_width);
    std::vector<GateQ> bias(gate_width);
    for (std::size_t g = 0; g < nn::kNumGates; ++g) {
      for (std::size_t j = 0; j < hidden; ++j) {
        auto& col = w_x_cols[g * hidden + j];
        col.reserve(embed);
        for (std::size_t i = 0; i < embed; ++i) {
          col.push_back(GateQ::from_double(params.w_x[g](i, j)));
        }
        bias[g * hidden + j] = GateQ::from_double(params.bias[g][j]);
      }
    }
    token_table_.resize(static_cast<std::size_t>(config.vocab_size) * gate_width);
    std::vector<GateQ> x(embed);
    for (std::size_t t = 0; t < static_cast<std::size_t>(config.vocab_size); ++t) {
      for (std::size_t i = 0; i < embed; ++i) {
        x[i] = GateQ::from_double(params.embedding(t, i));
      }
      GateQ* row = token_table_.data() + t * gate_width;
      for (std::size_t col = 0; col < gate_width; ++col) {
        GateQ acc = bias[col];
        for (std::size_t i = 0; i < embed; ++i) acc += w_x_cols[col][i] * x[i];
        row[col] = acc;
      }
    }
    // Packed row-major recurrent block: w_h[g](i,j) at (i, g·hidden + j).
    w_h_packed_.resize(hidden * gate_width);
    for (std::size_t g = 0; g < nn::kNumGates; ++g) {
      for (std::size_t i = 0; i < hidden; ++i) {
        for (std::size_t j = 0; j < hidden; ++j) {
          w_h_packed_[i * gate_width + g * hidden + j] =
              GateQ::from_double(params.w_h[g](i, j));
        }
      }
    }
    dense_w_.reserve(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      dense_w_.push_back(StateQ::from_double(params.dense_w[j]));
    }
    dense_b_ = StateQ::from_double(params.dense_b);
  }

  double infer(nn::TokenSpan sequence) const override {
    CSDML_REQUIRE(!sequence.empty(), "empty sequence");
    const std::size_t hidden = config_.hidden_dim;
    const std::size_t gate_width = nn::kNumGates * hidden;
    std::vector<StateQ> c(hidden, StateQ::from_raw(0));
    std::vector<StateQ> h(hidden, StateQ::from_raw(0));
    std::vector<GateQ> h_narrow(hidden, GateQ::from_raw(0));
    std::vector<GateQ> pre(gate_width);

    for (const nn::TokenId token : sequence) {
      CSDML_REQUIRE(token >= 0 && token < config_.vocab_size, "token range");
      // kernel_preprocess + the W_x half of kernel_gates: one table row.
      const GateQ* row =
          token_table_.data() + static_cast<std::size_t>(token) * gate_width;
      std::copy(row, row + gate_width, pre.begin());
      for (std::size_t i = 0; i < hidden; ++i) {
        const GateQ hi = h_narrow[i];
        if (hi.raw() == 0) continue;  // exact: products of zero are zero
        const GateQ* wrow = w_h_packed_.data() + i * gate_width;
        for (std::size_t col = 0; col < gate_width; ++col) {
          pre[col] += wrow[col] * hi;
        }
      }
      for (std::size_t g = 0; g < nn::kNumGates; ++g) {
        GateQ* seg = pre.data() + g * hidden;
        for (std::size_t j = 0; j < hidden; ++j) {
          seg[j] = g == nn::kCandidate ? softsign_q(seg[j])
                                       : sigmoid_plan_q(seg[j]);
        }
      }
      // kernel_hidden_state in the wide format.
      for (std::size_t j = 0; j < hidden; ++j) {
        const StateQ i_gate = convert<StateQ>(pre[nn::kInput * hidden + j]);
        const StateQ f_gate = convert<StateQ>(pre[nn::kForget * hidden + j]);
        const StateQ g_cand = convert<StateQ>(pre[nn::kCandidate * hidden + j]);
        const StateQ o_gate = convert<StateQ>(pre[nn::kOutput * hidden + j]);
        c[j] = f_gate * c[j] + i_gate * g_cand;
        h[j] = o_gate * softsign_q(c[j]);
        h_narrow[j] = convert<GateQ>(h[j]);
      }
    }

    StateQ logit = dense_b_;
    for (std::size_t j = 0; j < hidden; ++j) logit += dense_w_[j] * h[j];
    return sigmoid_plan_q(logit).to_double();
  }

  std::string describe() const override { return description_; }

 private:
  nn::LstmConfig config_;
  std::string description_;
  std::vector<GateQ> token_table_;  ///< vocab × 4·hidden: bias + W_x·x_token
  std::vector<GateQ> w_h_packed_;   ///< hidden × 4·hidden
  std::vector<StateQ> dense_w_;
  StateQ dense_b_{};
};

}  // namespace

const char* precision_name(PrecisionPreset preset) {
  switch (preset) {
    case PrecisionPreset::UniformQ10: return "uniform-q10";
    case PrecisionPreset::UniformQ16: return "uniform-q16";
    case PrecisionPreset::UniformQ24: return "uniform-q24";
    case PrecisionPreset::GatesQ16StateQ24: return "mixed-q16/q24";
  }
  throw PreconditionError("unknown precision preset");
}

std::unique_ptr<IQuantizedInference> make_mixed_datapath(
    const nn::LstmConfig& config, const nn::LstmParams& params,
    PrecisionPreset preset) {
  using Q10 = QFixed<10>;
  using Q16 = fixedpt::Q16;
  using Q24 = fixedpt::Q24;
  switch (preset) {
    case PrecisionPreset::UniformQ10:
      return std::make_unique<MixedDatapath<Q10, Q10>>(config, params,
                                                       "Q10 gates / Q10 state");
    case PrecisionPreset::UniformQ16:
      return std::make_unique<MixedDatapath<Q16, Q16>>(config, params,
                                                       "Q16 gates / Q16 state");
    case PrecisionPreset::UniformQ24:
      return std::make_unique<MixedDatapath<Q24, Q24>>(config, params,
                                                       "Q24 gates / Q24 state");
    case PrecisionPreset::GatesQ16StateQ24:
      return std::make_unique<MixedDatapath<Q16, Q24>>(config, params,
                                                       "Q16 gates / Q24 state");
  }
  throw PreconditionError("unknown precision preset");
}

std::uint32_t dsp_per_gate_mac(PrecisionPreset preset) {
  switch (preset) {
    case PrecisionPreset::UniformQ10:
    case PrecisionPreset::UniformQ16:
    case PrecisionPreset::GatesQ16StateQ24:
      return 1;  // operands fit the DSP48E2's 18x27 multiplier
    case PrecisionPreset::UniformQ24:
      return 2;  // needs a two-slice cascade
  }
  throw PreconditionError("unknown precision preset");
}

}  // namespace csdml::kernels
