#include "kernels/mixed.hpp"

#include <array>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"
#include "fixed/qfixed.hpp"

namespace csdml::kernels {

namespace {

using fixedpt::QFixed;

/// Exact-raw conversion between Q formats (arithmetic shift).
template <typename QTo, typename QFrom>
QTo convert(QFrom value) {
  constexpr int shift = QTo::kFracBits - QFrom::kFracBits;
  if constexpr (shift >= 0) {
    return QTo::from_raw(value.raw() << shift);
  } else {
    // Round to nearest on narrowing.
    const std::int64_t half = std::int64_t{1} << (-shift - 1);
    return QTo::from_raw((value.raw() + (value.raw() >= 0 ? half : -half)) >>
                         (-shift));
  }
}

/// PLAN sigmoid in pure Q arithmetic (coefficients are exact binary).
template <typename Q>
Q sigmoid_plan_q(Q x) {
  const std::int64_t one = Q::kOne;
  const std::int64_t mag = std::abs(x.raw());
  std::int64_t half;
  if (mag >= 5 * one) {
    half = one;
  } else if (8 * mag >= 19 * one) {  // |x| >= 2.375
    half = mag / 32 + (27 * one) / 32;
  } else if (mag >= one) {
    half = mag / 8 + (5 * one) / 8;
  } else {
    half = mag / 4 + one / 2;
  }
  return Q::from_raw(x.raw() >= 0 ? half : one - half);
}

/// softsign in pure Q arithmetic: raw * one / (|raw| + one).
template <typename Q>
Q softsign_q(Q x) {
  const std::int64_t one = Q::kOne;
  const std::int64_t raw = x.raw();
  const std::int64_t mag = raw < 0 ? -raw : raw;
  const __int128 numerator = static_cast<__int128>(raw) * one;
  const __int128 denominator = static_cast<__int128>(mag) + one;
  const __int128 half = denominator / 2;
  const __int128 adjusted = numerator >= 0 ? numerator + half : numerator - half;
  return Q::from_raw(static_cast<std::int64_t>(adjusted / denominator));
}

template <typename GateQ, typename StateQ>
class MixedDatapath final : public IQuantizedInference {
 public:
  MixedDatapath(const nn::LstmConfig& config, const nn::LstmParams& params,
                std::string description)
      : config_(config), description_(std::move(description)) {
    const std::size_t hidden = config.hidden_dim;
    const std::size_t embed = config.embed_dim;

    embedding_.resize(static_cast<std::size_t>(config.vocab_size));
    for (std::size_t r = 0; r < embedding_.size(); ++r) {
      embedding_[r].reserve(embed);
      for (std::size_t c = 0; c < embed; ++c) {
        embedding_[r].push_back(GateQ::from_double(params.embedding(r, c)));
      }
    }
    for (std::size_t g = 0; g < nn::kNumGates; ++g) {
      w_x_[g].resize(hidden);
      w_h_[g].resize(hidden);
      bias_[g].reserve(hidden);
      for (std::size_t j = 0; j < hidden; ++j) {
        w_x_[g][j].reserve(embed);
        for (std::size_t i = 0; i < embed; ++i) {
          w_x_[g][j].push_back(GateQ::from_double(params.w_x[g](i, j)));
        }
        w_h_[g][j].reserve(hidden);
        for (std::size_t i = 0; i < hidden; ++i) {
          w_h_[g][j].push_back(GateQ::from_double(params.w_h[g](i, j)));
        }
        bias_[g].push_back(GateQ::from_double(params.bias[g][j]));
      }
    }
    dense_w_.reserve(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      dense_w_.push_back(StateQ::from_double(params.dense_w[j]));
    }
    dense_b_ = StateQ::from_double(params.dense_b);
  }

  double infer(const nn::Sequence& sequence) const override {
    CSDML_REQUIRE(!sequence.empty(), "empty sequence");
    const std::size_t hidden = config_.hidden_dim;
    std::vector<StateQ> c(hidden, StateQ::from_raw(0));
    std::vector<StateQ> h(hidden, StateQ::from_raw(0));
    std::vector<GateQ> h_narrow(hidden, GateQ::from_raw(0));

    std::array<std::vector<GateQ>, nn::kNumGates> act;
    for (auto& v : act) v.resize(hidden);

    for (const nn::TokenId token : sequence) {
      CSDML_REQUIRE(token >= 0 && token < config_.vocab_size, "token range");
      const std::vector<GateQ>& x =
          embedding_[static_cast<std::size_t>(token)];

      // kernel_gates in the narrow format.
      for (std::size_t g = 0; g < nn::kNumGates; ++g) {
        for (std::size_t j = 0; j < hidden; ++j) {
          GateQ acc = bias_[g][j];
          const auto& wx = w_x_[g][j];
          for (std::size_t i = 0; i < x.size(); ++i) acc += wx[i] * x[i];
          const auto& wh = w_h_[g][j];
          for (std::size_t i = 0; i < hidden; ++i) acc += wh[i] * h_narrow[i];
          act[g][j] = g == nn::kCandidate ? softsign_q(acc)
                                          : sigmoid_plan_q(acc);
        }
      }
      // kernel_hidden_state in the wide format.
      for (std::size_t j = 0; j < hidden; ++j) {
        const StateQ i_gate = convert<StateQ>(act[nn::kInput][j]);
        const StateQ f_gate = convert<StateQ>(act[nn::kForget][j]);
        const StateQ g_cand = convert<StateQ>(act[nn::kCandidate][j]);
        const StateQ o_gate = convert<StateQ>(act[nn::kOutput][j]);
        c[j] = f_gate * c[j] + i_gate * g_cand;
        h[j] = o_gate * softsign_q(c[j]);
        h_narrow[j] = convert<GateQ>(h[j]);
      }
    }

    StateQ logit = dense_b_;
    for (std::size_t j = 0; j < hidden; ++j) logit += dense_w_[j] * h[j];
    return sigmoid_plan_q(logit).to_double();
  }

  std::string describe() const override { return description_; }

 private:
  nn::LstmConfig config_;
  std::string description_;
  std::vector<std::vector<GateQ>> embedding_;
  std::array<std::vector<std::vector<GateQ>>, nn::kNumGates> w_x_;
  std::array<std::vector<std::vector<GateQ>>, nn::kNumGates> w_h_;
  std::array<std::vector<GateQ>, nn::kNumGates> bias_;
  std::vector<StateQ> dense_w_;
  StateQ dense_b_{};
};

}  // namespace

const char* precision_name(PrecisionPreset preset) {
  switch (preset) {
    case PrecisionPreset::UniformQ10: return "uniform-q10";
    case PrecisionPreset::UniformQ16: return "uniform-q16";
    case PrecisionPreset::UniformQ24: return "uniform-q24";
    case PrecisionPreset::GatesQ16StateQ24: return "mixed-q16/q24";
  }
  throw PreconditionError("unknown precision preset");
}

std::unique_ptr<IQuantizedInference> make_mixed_datapath(
    const nn::LstmConfig& config, const nn::LstmParams& params,
    PrecisionPreset preset) {
  using Q10 = QFixed<10>;
  using Q16 = fixedpt::Q16;
  using Q24 = fixedpt::Q24;
  switch (preset) {
    case PrecisionPreset::UniformQ10:
      return std::make_unique<MixedDatapath<Q10, Q10>>(config, params,
                                                       "Q10 gates / Q10 state");
    case PrecisionPreset::UniformQ16:
      return std::make_unique<MixedDatapath<Q16, Q16>>(config, params,
                                                       "Q16 gates / Q16 state");
    case PrecisionPreset::UniformQ24:
      return std::make_unique<MixedDatapath<Q24, Q24>>(config, params,
                                                       "Q24 gates / Q24 state");
    case PrecisionPreset::GatesQ16StateQ24:
      return std::make_unique<MixedDatapath<Q16, Q24>>(config, params,
                                                       "Q16 gates / Q24 state");
  }
  throw PreconditionError("unknown precision preset");
}

std::uint32_t dsp_per_gate_mac(PrecisionPreset preset) {
  switch (preset) {
    case PrecisionPreset::UniformQ10:
    case PrecisionPreset::UniformQ16:
    case PrecisionPreset::GatesQ16StateQ24:
      return 1;  // operands fit the DSP48E2's 18x27 multiplier
    case PrecisionPreset::UniformQ24:
      return 2;  // needs a two-slice cascade
  }
  throw PreconditionError("unknown precision preset");
}

}  // namespace csdml::kernels
