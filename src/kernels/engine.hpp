// CsdLstmEngine — the paper's primary contribution assembled: the full
// LSTM inference procedure offloaded to the CSD's FPGA.
//
// Composition per Fig. 2 of the paper:
//
//   host program ──initialises──> weights & embeddings in FPGA DDR
//   kernel_preprocess ──x_t copies──> 4 × kernel_gates CUs (parallel)
//                       gate vectors ──> kernel_hidden_state ──h_t copies──┐
//                                 ▲─────────────────────────────────────────┘
//
// kernel_preprocess runs one item ahead of the gate/hidden pipeline
// (Section III-C), so per-item latency in steady state is
// gates + hidden_state, and preprocess is only exposed for the first item.
//
// The functional result runs through the fused table-driven datapaths
// (see functional.hpp); batches fan out across a thread pool with
// per-thread scratch, since wall-clock throughput of the software model is
// itself a measured quantity (bench_throughput).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "common/thread_pool.hpp"
#include "kernels/functional.hpp"
#include "kernels/specs.hpp"
#include "nn/weights_io.hpp"
#include "xrt/runtime.hpp"

namespace csdml::baselines {
class HostBaseline;
}

namespace csdml::kernels {

/// How the engine reacts to injected kernel-launch failures: bounded
/// retries with exponential backoff (charged to simulated device time),
/// then mark the CSD unhealthy and serve from the host fallback until a
/// periodic recovery probe succeeds.
struct RetryPolicy {
  std::uint32_t max_attempts{3};
  Duration base_backoff{Duration::microseconds(50)};  ///< doubles per retry
  /// While unhealthy, re-probe the pipeline every Nth degraded serve
  /// (0 disables probing: once unhealthy, always degraded).
  std::uint32_t recovery_probe_interval{8};
};

struct EngineConfig {
  OptimizationLevel level{OptimizationLevel::FixedPoint};
  std::uint32_t gate_cu_count{4};  ///< the paper uses four
  std::int64_t fixed_scale{fixedpt::kPaperScale};
  /// Bank assignment: even CUs + preprocess on bank 0, odd CUs + hidden on
  /// bank 1 ("a conservative two DDR banks", Section III-C).
  std::uint32_t sequence_bank{0};
  /// Inter-kernel data movement; Stream is the paper's "streaming can be
  /// easily ported ... for additional acceleration" variant.
  KernelLink link{KernelLink::AxiMemory};
  /// Executors for infer_batch (including the caller); 0 picks
  /// hardware_concurrency, 1 keeps the batch loop single-threaded.
  std::uint32_t batch_threads{0};
  RetryPolicy retry{};
};

/// Per-item kernel timings — the Fig. 3 quantities.
struct KernelTimings {
  Duration preprocess;
  Duration gates;        ///< max over the parallel CUs (steady state)
  Duration hidden_state;

  Duration total() const { return preprocess + gates + hidden_state; }
};

struct InferenceResult {
  double probability{0.0};
  int label{0};
  Duration device_time;      ///< end-to-end simulated FPGA time for the sequence
  KernelTimings per_item;    ///< steady-state per-item breakdown
  /// True when the FPGA pipeline was unavailable and the classification
  /// was served by the host fallback instead (per-item timings are then
  /// zero and device_time is the modelled host latency).
  bool degraded{false};
};

class CsdLstmEngine {
 public:
  /// Builds the xclbin for the configured optimization level, places it on
  /// the device's FPGA (throws ResourceError if it cannot fit) and stages
  /// the weights into FPGA DDR the way the host program's initialisation
  /// step does.
  CsdLstmEngine(xrt::Device& device, const nn::LstmConfig& model_config,
                const nn::LstmParams& params, EngineConfig config);

  /// Convenience: initialise straight from a weight text file snapshot.
  CsdLstmEngine(xrt::Device& device, const nn::ModelSnapshot& snapshot,
                EngineConfig config);

  const EngineConfig& config() const { return config_; }
  const nn::LstmConfig& model_config() const { return model_config_; }

  /// Steady-state per-item kernel timings under the cost model.
  KernelTimings per_item_timings() const;

  /// Classifies a sequence already resident in FPGA DRAM (the steady-state
  /// in-storage path). Accepts any contiguous token window (e.g. a ring
  /// buffer view) without copying.
  InferenceResult infer(nn::TokenSpan sequence);

  /// Classifies a batch of sequences streamed back-to-back through the
  /// kernel pipeline. In steady state the lookahead preprocess keeps every
  /// stage busy across sequence boundaries, so only the first sequence
  /// exposes the preprocess latency. The functional forward passes fan out
  /// across `config().batch_threads` executors with per-thread scratch.
  struct BatchResult {
    std::vector<double> probabilities;
    std::vector<int> labels;
    Duration device_time;
    /// Classified windows per second of device time.
    double windows_per_second{0.0};
    /// True when the batch was served window-by-window from the host
    /// fallback because the FPGA pipeline was unavailable.
    bool degraded{false};
  };
  BatchResult infer_batch(const std::vector<nn::Sequence>& sequences);

  /// Classifies a sequence stored on the SSD: P2P (or host-mediated) read
  /// into FPGA DDR, then inference. Returns the result plus the transfer
  /// time actually spent on the chosen path.
  struct SsdInferenceResult {
    InferenceResult inference;
    Duration transfer_time;
  };
  SsdInferenceResult infer_from_ssd(std::uint64_t lba, std::uint32_t block_count,
                                    const nn::Sequence& sequence, bool p2p);

  /// FPGA resource utilisation after placement.
  double fpga_utilization() const;

  /// The board's request-span collector. The detector opens a trace here at
  /// ingress; every stage below (engine, transfers, kernels) then records
  /// into the same tree.
  obs::SpanTrace& span_trace() { return device_.board().span_trace(); }
  /// Current simulated device time (span/trace boundary timestamps).
  TimePoint device_now() const { return device_.now(); }

  /// Hot-swaps the model parameters without recompiling the FPGA binary —
  /// the paper's update path ("the FPGA-based model is compiled once and
  /// can be updated at the operator's discretion", e.g. after retraining
  /// on new strains from CTI feeds). Re-stages the weight image over PCIe
  /// (time charged to the device) and rebuilds the functional datapath,
  /// including its token→gate-preactivation table (wall-clock recorded in
  /// the `engine.weight_table_rebuild_us` histogram).
  ///
  /// The rebuild happens in the *inactive* datapath slot and is published
  /// by bumping an epoch counter, so in-flight inference never waits on
  /// it — a swap only contends with classification for the short PCIe
  /// staging step (see `device_mutex_`), never for the table build.
  /// The model architecture (dims, activation) must be unchanged.
  void update_weights(const nn::LstmParams& params);

  /// Number of weight images staged so far (1 after construction).
  std::uint32_t weight_updates() const {
    return weight_updates_.load(std::memory_order_relaxed);
  }

  /// Hands out the engine's device lock so callers can frame their own
  /// spans/trace around an engine entry point (the serving coalescer opens
  /// a `serve.batch` trace, then calls infer_batch while still holding the
  /// lock — the mutex is recursive precisely so that nesting works). All
  /// simulated-device state (clock, kernel trace, span collector) is
  /// single-threaded by contract; every engine path that touches it locks
  /// this mutex, as must any outside caller.
  std::unique_lock<std::recursive_mutex> lock_device() const {
    return std::unique_lock<std::recursive_mutex>(device_mutex_);
  }

  /// Registers the host deployment consulted while the CSD is unhealthy.
  /// Not owned; must outlive the engine (nullptr detaches — classifying
  /// while unhealthy then throws faults::CsdUnavailableError, so no
  /// degraded classification can pass unnoticed).
  void set_fallback(const baselines::HostBaseline* fallback);

  /// False once launch retries were exhausted; recovery probes (every
  /// `retry.recovery_probe_interval` degraded serves) flip it back.
  bool healthy() const { return healthy_.load(std::memory_order_relaxed); }

  /// Test/operator hook: clears the unhealthy latch immediately.
  void restore_health();

 private:
  /// One buildable copy of the functional datapath. Two of these alternate
  /// as the live path (exactly one of float/fixed is populated per the
  /// optimization level): update_weights builds into the inactive slot and
  /// publishes it by bumping `epoch_` — epoch-based reclamation in place
  /// of the old reader/writer lock, so hot swaps never stall readers.
  struct DatapathSlot {
    std::unique_ptr<FloatDatapath> float_path;
    std::unique_ptr<FixedDatapath> fixed_path;
    /// In-flight readers pinned to this slot. A writer may only rebuild
    /// the slot once this drains to zero; own cache line so reader
    /// pin/unpin never collides with the datapath pointers.
    alignas(64) mutable std::atomic<std::uint32_t> readers{0};
  };

  /// RAII read-side pin. Resolves the active slot from `epoch_`, bumps its
  /// reader count, then re-checks the epoch: a stale pin (the epoch moved
  /// between load and increment, meaning a writer may already be rebuilding
  /// the slot we grabbed) unpins and retries, so it never dereferences a
  /// slot under construction. seq_cst throughout — the writer's
  /// drain-then-rebuild and the reader's pin-then-recheck form a Dekker
  /// handshake that weaker orders would not make total.
  class EpochPin {
   public:
    explicit EpochPin(const CsdLstmEngine& engine) {
      for (;;) {
        const std::uint64_t epoch =
            engine.epoch_.load(std::memory_order_seq_cst);
        const DatapathSlot& slot = engine.slots_[epoch & 1];
        slot.readers.fetch_add(1, std::memory_order_seq_cst);
        if (engine.epoch_.load(std::memory_order_seq_cst) == epoch) {
          slot_ = &slot;
          return;
        }
        slot.readers.fetch_sub(1, std::memory_order_seq_cst);
      }
    }
    ~EpochPin() { slot_->readers.fetch_sub(1, std::memory_order_seq_cst); }
    EpochPin(const EpochPin&) = delete;
    EpochPin& operator=(const EpochPin&) = delete;

    const DatapathSlot& slot() const { return *slot_; }

   private:
    const DatapathSlot* slot_{nullptr};
  };

  void initialise();
  void build_datapath(DatapathSlot& slot);
  double forward(const DatapathSlot& slot, nn::TokenSpan sequence,
                 FloatScratch& float_scratch,
                 FixedScratch& fixed_scratch) const;
  ThreadPool& batch_pool();
  /// True when the pipeline is usable for this classification: healthy
  /// and the (possibly retried) launch succeeded, or a recovery probe
  /// just brought the CSD back. Charges backoff to device time.
  bool ensure_csd_available();
  bool attempt_launch();
  InferenceResult degraded_infer(nn::TokenSpan sequence);

  xrt::Device& device_;
  nn::LstmConfig model_config_;
  /// Written only by the constructor and update_weights (both under
  /// `update_mutex_`); the inference hot path reads the datapath slots,
  /// never this.
  nn::LstmParams params_;
  EngineConfig config_;
  /// Two-slot datapath store: slot `epoch_ & 1` is live, the other is the
  /// writer's build target. A bumped epoch publishes the rebuilt slot.
  DatapathSlot slots_[2];
  std::atomic<std::uint64_t> epoch_{0};
  /// Serialises update_weights writers (and their params_ mutation).
  std::mutex update_mutex_;
  /// Everything on the simulated device is single-threaded by contract —
  /// the clock, the kernel trace, the span collector. This lock is that
  /// contract made enforceable: infer / infer_batch / infer_from_ssd hold
  /// it for their device work, update_weights takes it only for the brief
  /// PCIe staging step, and the serving layer pins it around its own span
  /// framing via lock_device(). Recursive so infer_from_ssd can nest
  /// infer, and so the serving coalescer can hold it across infer_batch.
  mutable std::recursive_mutex device_mutex_;
  FloatScratch float_scratch_;
  FixedScratch fixed_scratch_;
  std::unique_ptr<ThreadPool> batch_pool_;  ///< lazily created on first batch
  std::mutex batch_pool_mutex_;
  std::optional<xrt::BufferObject> weights_bo_;
  std::atomic<std::uint32_t> weight_updates_{0};
  std::atomic<bool> healthy_{true};
  std::atomic<std::uint32_t> degraded_serves_{0};
  std::atomic<const baselines::HostBaseline*> fallback_{nullptr};
};

}  // namespace csdml::kernels
