#include "kernels/pipeline_sim.hpp"

#include <functional>
#include <vector>

#include "common/error.hpp"

namespace csdml::kernels {

StageDurations stage_durations(const hls::HlsCostModel& model,
                               const nn::LstmConfig& config,
                               const PipelineSimConfig& pipeline) {
  const Frequency clock = model.clock();
  StageDurations stages;
  stages.preprocess =
      clock.duration_of(model.analyze(make_preprocess_spec(
                                          config, pipeline.level,
                                          pipeline.gate_cu_count, pipeline.link))
                            .total);
  const hls::KernelReport gates = model.analyze(
      make_gates_spec(config, pipeline.level, pipeline.link));
  const std::uint32_t rounds =
      (static_cast<std::uint32_t>(nn::kNumGates) + pipeline.gate_cu_count - 1) /
      pipeline.gate_cu_count;
  if (gates_reports_amortized_ii(pipeline.level)) {
    const std::uint64_t ii =
        gates.loops.empty() ? 1 : gates.loops.front().achieved_ii;
    stages.gates = clock.duration_of(Cycles{std::max<std::uint64_t>(ii, 1)}) *
                   static_cast<std::int64_t>(rounds);
  } else {
    stages.gates =
        clock.duration_of(gates.total) * static_cast<std::int64_t>(rounds);
  }
  stages.hidden = clock.duration_of(
      model.analyze(make_hidden_state_spec(config, pipeline.level,
                                           pipeline.gate_cu_count, pipeline.link))
          .total);
  return stages;
}

PipelineSimResult simulate_pipeline(const hls::HlsCostModel& model,
                                    const nn::LstmConfig& config,
                                    const PipelineSimConfig& pipeline,
                                    std::size_t items) {
  CSDML_REQUIRE(items > 0, "need at least one item");
  const StageDurations stages = stage_durations(model, config, pipeline);

  sim::Simulation simulation;
  PipelineSimResult result;
  result.items = items;

  std::vector<bool> preprocess_started(items, false);
  std::vector<bool> gates_started(items, false);
  std::vector<bool> preprocess_done(items, false);
  std::vector<bool> hidden_done(items, false);
  TimePoint last_hidden{};

  std::function<void(std::size_t)> try_start_preprocess;
  std::function<void(std::size_t)> try_start_gates;

  try_start_gates = [&](std::size_t i) {
    if (i >= items || gates_started[i]) return;
    if (!preprocess_done[i]) return;           // needs x_t
    if (i > 0 && !hidden_done[i - 1]) return;  // needs h_{t-1}
    gates_started[i] = true;
    const TimePoint start = simulation.now();
    // The CU input buffer is consumed: the next preprocess may refill it.
    simulation.schedule_after(Duration::zero(),
                              [&, i] { try_start_preprocess(i + 1); });
    simulation.schedule_after(stages.gates, [&, i, start] {
      result.trace.record("gates", start, simulation.now());
      const TimePoint hidden_start = simulation.now();
      simulation.schedule_after(stages.hidden, [&, i, hidden_start] {
        hidden_done[i] = true;
        result.trace.record("hidden_state", hidden_start, simulation.now());
        last_hidden = simulation.now();
        try_start_gates(i + 1);
      });
    });
  };

  try_start_preprocess = [&](std::size_t i) {
    if (i >= items || preprocess_started[i]) return;
    if (i > 0 && !preprocess_done[i - 1]) return;   // one lookahead engine
    if (i > 1 && !gates_started[i - 1]) return;     // single x-buffer slot
    preprocess_started[i] = true;
    const TimePoint start = simulation.now();
    simulation.schedule_after(stages.preprocess, [&, i, start] {
      preprocess_done[i] = true;
      result.trace.record("preprocess", start, simulation.now());
      try_start_gates(i);
      try_start_preprocess(i + 1);
    });
  };

  simulation.schedule_at(TimePoint{}, [&] { try_start_preprocess(0); });
  simulation.run();

  CSDML_REQUIRE(hidden_done[items - 1], "pipeline deadlocked");
  result.total = last_hidden - TimePoint{};
  return result;
}

}  // namespace csdml::kernels
