#include "kernels/functional.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "fixed/activations.hpp"
#include "nn/tensor.hpp"

namespace csdml::kernels {

FloatDatapath::FloatDatapath(const nn::LstmConfig& config,
                             const nn::LstmParams& params)
    : config_(config), owned_(params) {
  params_ = &owned_;
  CSDML_REQUIRE(owned_.embedding.rows() ==
                    static_cast<std::size_t>(config.vocab_size),
                "params do not match config");
  build_tables();
}

void FloatDatapath::build_tables() {
  const std::size_t hidden = config_.hidden_dim;
  const std::size_t embed = config_.embed_dim;
  const std::size_t vocab = static_cast<std::size_t>(config_.vocab_size);
  const std::size_t gate_width = nn::kNumGates * hidden;

  // token_table_ row t = per-gate `bias + W_x·x_t` in the reference
  // operation order (bias first, then x contributions with the zero-input
  // skip accumulate_vec_mat applies), so the fused path stays bit-exact.
  token_table_ = nn::Matrix(vocab, gate_width);
  for (std::size_t t = 0; t < vocab; ++t) {
    double* row = token_table_.row(t);
    for (std::size_t g = 0; g < nn::kNumGates; ++g) {
      const nn::Vector& bias = params_->bias[g];
      for (std::size_t j = 0; j < hidden; ++j) row[g * hidden + j] = bias[j];
    }
    const double* x = params_->embedding.row(t);
    for (std::size_t g = 0; g < nn::kNumGates; ++g) {
      double* seg = row + g * hidden;
      const nn::Matrix& w_x = params_->w_x[g];
      for (std::size_t i = 0; i < embed; ++i) {
        const double xi = x[i];
        if (xi == 0.0) continue;
        const double* wrow = w_x.row(i);
        for (std::size_t j = 0; j < hidden; ++j) seg[j] += xi * wrow[j];
      }
    }
  }

  w_h_packed_ = nn::Matrix(hidden, gate_width);
  for (std::size_t g = 0; g < nn::kNumGates; ++g) {
    const nn::Matrix& w_h = params_->w_h[g];
    for (std::size_t i = 0; i < hidden; ++i) {
      const double* src = w_h.row(i);
      double* dst = w_h_packed_.row(i) + g * hidden;
      for (std::size_t j = 0; j < hidden; ++j) dst[j] = src[j];
    }
  }
}

nn::Vector FloatDatapath::preprocess(nn::TokenId token) const {
  CSDML_REQUIRE(token >= 0 && token < config_.vocab_size, "token out of range");
  nn::Vector x(config_.embed_dim);
  const double* row = params_->embedding.row(static_cast<std::size_t>(token));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = row[i];
  return x;
}

GateVectors FloatDatapath::gates(const nn::Vector& x, const nn::Vector& h) const {
  const std::size_t hidden = config_.hidden_dim;
  GateVectors out;
  for (std::size_t g = 0; g < nn::kNumGates; ++g) {
    nn::Vector pre = params_->bias[g];
    nn::accumulate_vec_mat(x, params_->w_x[g], pre);
    nn::accumulate_vec_mat(h, params_->w_h[g], pre);
    out.act[g].resize(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      out.act[g][j] = g == nn::kCandidate
                          ? nn::apply_cell_activation(config_.activation, pre[j])
                          : fixedpt::sigmoid(pre[j]);
    }
  }
  return out;
}

void FloatDatapath::hidden_state(const GateVectors& gates, nn::Vector& c,
                                 nn::Vector& h) const {
  const std::size_t hidden = config_.hidden_dim;
  CSDML_REQUIRE(c.size() == hidden && h.size() == hidden, "bad state size");
  for (std::size_t j = 0; j < hidden; ++j) {
    c[j] = gates.act[nn::kForget][j] * c[j] +
           gates.act[nn::kInput][j] * gates.act[nn::kCandidate][j];
    h[j] = gates.act[nn::kOutput][j] *
           nn::apply_cell_activation(config_.activation, c[j]);
  }
}

double FloatDatapath::dense(const nn::Vector& h) const {
  return fixedpt::sigmoid(nn::dot(params_->dense_w, h) + params_->dense_b);
}

double FloatDatapath::infer_reference(nn::TokenSpan sequence) const {
  CSDML_REQUIRE(!sequence.empty(), "empty sequence");
  nn::Vector h(config_.hidden_dim, 0.0);
  nn::Vector c(config_.hidden_dim, 0.0);
  for (const nn::TokenId token : sequence) {
    const nn::Vector x = preprocess(token);
    const GateVectors g = gates(x, h);
    hidden_state(g, c, h);
  }
  return dense(h);
}

void FloatDatapath::ensure_scratch(FloatScratch& scratch) const {
  const std::size_t hidden = config_.hidden_dim;
  scratch.pre.resize(nn::kNumGates * hidden);
  scratch.c.assign(hidden, 0.0);
  scratch.h.assign(hidden, 0.0);
}

double FloatDatapath::infer(nn::TokenSpan sequence) const {
  FloatScratch scratch;
  return infer(sequence, scratch);
}

double FloatDatapath::infer(nn::TokenSpan sequence, FloatScratch& scratch) const {
  CSDML_REQUIRE(!sequence.empty(), "empty sequence");
  const std::size_t hidden = config_.hidden_dim;
  ensure_scratch(scratch);
  double* pre = scratch.pre.data();
  double* c = scratch.c.data();
  double* h = scratch.h.data();
  const std::size_t gate_width = nn::kNumGates * hidden;

  for (const nn::TokenId token : sequence) {
    CSDML_REQUIRE(token >= 0 && token < config_.vocab_size, "token out of range");
    // kernel_preprocess + the W_x half of kernel_gates: one table row.
    const double* row = token_table_.row(static_cast<std::size_t>(token));
    std::copy(row, row + gate_width, pre);
    // Recurrent half: one unit-stride pass over the packed block. The
    // zero-input skip matches accumulate_vec_mat (and matters for the
    // all-zero initial state's bit pattern).
    for (std::size_t i = 0; i < hidden; ++i) {
      const double hi = h[i];
      if (hi == 0.0) continue;
      const double* wrow = w_h_packed_.row(i);
      for (std::size_t col = 0; col < gate_width; ++col) pre[col] += hi * wrow[col];
    }
    // Activations in place.
    for (std::size_t g = 0; g < nn::kNumGates; ++g) {
      double* seg = pre + g * hidden;
      if (g == nn::kCandidate) {
        for (std::size_t j = 0; j < hidden; ++j) {
          seg[j] = nn::apply_cell_activation(config_.activation, seg[j]);
        }
      } else {
        for (std::size_t j = 0; j < hidden; ++j) seg[j] = fixedpt::sigmoid(seg[j]);
      }
    }
    // kernel_hidden_state.
    const double* gi = pre + nn::kInput * hidden;
    const double* gf = pre + nn::kForget * hidden;
    const double* gc = pre + nn::kCandidate * hidden;
    const double* go = pre + nn::kOutput * hidden;
    for (std::size_t j = 0; j < hidden; ++j) {
      c[j] = gf[j] * c[j] + gi[j] * gc[j];
      h[j] = go[j] * nn::apply_cell_activation(config_.activation, c[j]);
    }
  }
  return dense(scratch.h);
}

// --- fixed-point datapath -------------------------------------------------

FixedDatapath::FixedDatapath(const nn::LstmConfig& config,
                             const nn::LstmParams& params, std::int64_t scale)
    : config_(config), scale_(scale) {
  CSDML_REQUIRE(scale > 0, "scale must be positive");
  const std::size_t hidden = config.hidden_dim;
  const std::size_t embed = config.embed_dim;

  embedding_rows_.resize(static_cast<std::size_t>(config.vocab_size));
  for (std::size_t r = 0; r < embedding_rows_.size(); ++r) {
    embedding_rows_[r].reserve(embed);
    for (std::size_t c = 0; c < embed; ++c) {
      embedding_rows_[r].push_back(fx(params.embedding(r, c)));
    }
  }
  for (std::size_t g = 0; g < nn::kNumGates; ++g) {
    w_x_cols_[g].resize(hidden);
    w_h_cols_[g].resize(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      w_x_cols_[g][j].reserve(embed);
      for (std::size_t i = 0; i < embed; ++i) {
        w_x_cols_[g][j].push_back(fx(params.w_x[g](i, j)));
      }
      w_h_cols_[g][j].reserve(hidden);
      for (std::size_t i = 0; i < hidden; ++i) {
        w_h_cols_[g][j].push_back(fx(params.w_h[g](i, j)));
      }
    }
    bias_[g].reserve(hidden);
    for (std::size_t j = 0; j < hidden; ++j) bias_[g].push_back(fx(params.bias[g][j]));
  }
  dense_w_.reserve(hidden);
  for (std::size_t j = 0; j < hidden; ++j) dense_w_.push_back(fx(params.dense_w[j]));
  dense_b_ = fx(params.dense_b);
  build_tables();
}

void FixedDatapath::build_tables() {
  const std::size_t hidden = config_.hidden_dim;
  const std::size_t embed = config_.embed_dim;
  const std::size_t vocab = static_cast<std::size_t>(config_.vocab_size);
  const std::size_t gate_width = nn::kNumGates * hidden;

  // Raw-integer `bias + W_x·x_t` per token. Integer addition is exact, so
  // folding the x half here leaves the fused result bit-identical to the
  // reference accumulation order.
  token_table_raw_.assign(vocab * gate_width, 0);
  for (std::size_t t = 0; t < vocab; ++t) {
    std::int64_t* row = token_table_raw_.data() + t * gate_width;
    const FixedVector& x = embedding_rows_[t];
    for (std::size_t g = 0; g < nn::kNumGates; ++g) {
      std::int64_t* seg = row + g * hidden;
      for (std::size_t j = 0; j < hidden; ++j) {
        std::int64_t acc = bias_[g][j].raw();
        const FixedVector& wx = w_x_cols_[g][j];
        for (std::size_t i = 0; i < embed; ++i) {
          acc += fixedpt::ScaledFixed::mul_raw(wx[i].raw(), x[i].raw(), scale_);
        }
        seg[j] = acc;
      }
    }
  }

  w_h_packed_raw_.assign(hidden * gate_width, 0);
  for (std::size_t g = 0; g < nn::kNumGates; ++g) {
    for (std::size_t j = 0; j < hidden; ++j) {
      const FixedVector& wh = w_h_cols_[g][j];
      for (std::size_t i = 0; i < hidden; ++i) {
        w_h_packed_raw_[i * gate_width + g * hidden + j] = wh[i].raw();
      }
    }
  }

  dense_w_raw_.resize(hidden);
  for (std::size_t j = 0; j < hidden; ++j) dense_w_raw_[j] = dense_w_[j].raw();
}

FixedVector FixedDatapath::preprocess(nn::TokenId token) const {
  CSDML_REQUIRE(token >= 0 && token < config_.vocab_size, "token out of range");
  return embedding_rows_[static_cast<std::size_t>(token)];
}

FixedGateVectors FixedDatapath::gates(const FixedVector& x,
                                      const FixedVector& h) const {
  const std::size_t hidden = config_.hidden_dim;
  FixedGateVectors out;
  for (std::size_t g = 0; g < nn::kNumGates; ++g) {
    out.act[g].reserve(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      fixedpt::ScaledFixed acc = bias_[g][j];
      const FixedVector& wx = w_x_cols_[g][j];
      for (std::size_t i = 0; i < x.size(); ++i) acc += wx[i] * x[i];
      const FixedVector& wh = w_h_cols_[g][j];
      for (std::size_t i = 0; i < h.size(); ++i) acc += wh[i] * h[i];
      // Gates use the PLAN sigmoid; the candidate uses softsign (the paper
      // replaces every tanh with softsign on the FPGA).
      out.act[g].push_back(g == nn::kCandidate ? fixedpt::softsign_fixed(acc)
                                               : fixedpt::sigmoid_fixed(acc));
    }
  }
  return out;
}

void FixedDatapath::hidden_state(const FixedGateVectors& gates, FixedVector& c,
                                 FixedVector& h) const {
  const std::size_t hidden = config_.hidden_dim;
  CSDML_REQUIRE(c.size() == hidden && h.size() == hidden, "bad state size");
  for (std::size_t j = 0; j < hidden; ++j) {
    c[j] = gates.act[nn::kForget][j] * c[j] +
           gates.act[nn::kInput][j] * gates.act[nn::kCandidate][j];
    h[j] = gates.act[nn::kOutput][j] * fixedpt::softsign_fixed(c[j]);
  }
}

double FixedDatapath::dense(const FixedVector& h) const {
  fixedpt::ScaledFixed acc = dense_b_;
  for (std::size_t j = 0; j < h.size(); ++j) acc += dense_w_[j] * h[j];
  return fixedpt::sigmoid_fixed(acc).to_double();
}

double FixedDatapath::infer_reference(nn::TokenSpan sequence) const {
  CSDML_REQUIRE(!sequence.empty(), "empty sequence");
  FixedVector h(config_.hidden_dim, fixedpt::ScaledFixed::from_raw(0, scale_));
  FixedVector c(config_.hidden_dim, fixedpt::ScaledFixed::from_raw(0, scale_));
  for (const nn::TokenId token : sequence) {
    const FixedVector x = preprocess(token);
    const FixedGateVectors g = gates(x, h);
    hidden_state(g, c, h);
  }
  return dense(h);
}

void FixedDatapath::ensure_scratch(FixedScratch& scratch) const {
  const std::size_t hidden = config_.hidden_dim;
  scratch.pre.resize(nn::kNumGates * hidden);
  scratch.c.assign(hidden, 0);
  scratch.h.assign(hidden, 0);
}

double FixedDatapath::infer(nn::TokenSpan sequence) const {
  FixedScratch scratch;
  return infer(sequence, scratch);
}

double FixedDatapath::infer(nn::TokenSpan sequence, FixedScratch& scratch) const {
  CSDML_REQUIRE(!sequence.empty(), "empty sequence");
  const std::size_t hidden = config_.hidden_dim;
  const std::int64_t scale = scale_;
  const fixedpt::InvariantScale div(scale);
  ensure_scratch(scratch);
  std::int64_t* pre = scratch.pre.data();
  std::int64_t* c = scratch.c.data();
  std::int64_t* h = scratch.h.data();
  const std::size_t gate_width = nn::kNumGates * hidden;
  using Fx = fixedpt::ScaledFixed;

  for (const nn::TokenId token : sequence) {
    CSDML_REQUIRE(token >= 0 && token < config_.vocab_size, "token out of range");
    const std::int64_t* row =
        token_table_raw_.data() + static_cast<std::size_t>(token) * gate_width;
    std::copy(row, row + gate_width, pre);
    for (std::size_t i = 0; i < hidden; ++i) {
      const std::int64_t hi = h[i];
      if (hi == 0) continue;  // exact: skipped products are exactly zero
      const std::int64_t* wrow = w_h_packed_raw_.data() + i * gate_width;
      for (std::size_t col = 0; col < gate_width; ++col) {
        pre[col] += div.mul(wrow[col], hi);
      }
    }
    for (std::size_t g = 0; g < nn::kNumGates; ++g) {
      std::int64_t* seg = pre + g * hidden;
      if (g == nn::kCandidate) {
        for (std::size_t j = 0; j < hidden; ++j) {
          seg[j] = fixedpt::softsign_fixed(Fx::from_raw(seg[j], scale)).raw();
        }
      } else {
        for (std::size_t j = 0; j < hidden; ++j) {
          seg[j] = fixedpt::sigmoid_fixed(Fx::from_raw(seg[j], scale)).raw();
        }
      }
    }
    const std::int64_t* gi = pre + nn::kInput * hidden;
    const std::int64_t* gf = pre + nn::kForget * hidden;
    const std::int64_t* gc = pre + nn::kCandidate * hidden;
    const std::int64_t* go = pre + nn::kOutput * hidden;
    for (std::size_t j = 0; j < hidden; ++j) {
      c[j] = div.mul(gf[j], c[j]) + div.mul(gi[j], gc[j]);
      h[j] = div.mul(go[j],
                     fixedpt::softsign_fixed(Fx::from_raw(c[j], scale)).raw());
    }
  }

  std::int64_t logit = dense_b_.raw();
  for (std::size_t j = 0; j < hidden; ++j) {
    logit += div.mul(dense_w_raw_[j], h[j]);
  }
  return fixedpt::sigmoid_fixed(Fx::from_raw(logit, scale)).to_double();
}

}  // namespace csdml::kernels
