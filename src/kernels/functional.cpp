#include "kernels/functional.hpp"

#include "common/error.hpp"
#include "fixed/activations.hpp"
#include "nn/tensor.hpp"

namespace csdml::kernels {

FloatDatapath::FloatDatapath(const nn::LstmConfig& config,
                             const nn::LstmParams& params)
    : config_(config), owned_(params) {
  params_ = &owned_;
  CSDML_REQUIRE(owned_.embedding.rows() ==
                    static_cast<std::size_t>(config.vocab_size),
                "params do not match config");
}

nn::Vector FloatDatapath::preprocess(nn::TokenId token) const {
  CSDML_REQUIRE(token >= 0 && token < config_.vocab_size, "token out of range");
  nn::Vector x(config_.embed_dim);
  const double* row = params_->embedding.row(static_cast<std::size_t>(token));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = row[i];
  return x;
}

GateVectors FloatDatapath::gates(const nn::Vector& x, const nn::Vector& h) const {
  const std::size_t hidden = config_.hidden_dim;
  GateVectors out;
  for (std::size_t g = 0; g < nn::kNumGates; ++g) {
    nn::Vector pre = params_->bias[g];
    nn::accumulate_vec_mat(x, params_->w_x[g], pre);
    nn::accumulate_vec_mat(h, params_->w_h[g], pre);
    out.act[g].resize(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      out.act[g][j] = g == nn::kCandidate
                          ? nn::apply_cell_activation(config_.activation, pre[j])
                          : fixedpt::sigmoid(pre[j]);
    }
  }
  return out;
}

void FloatDatapath::hidden_state(const GateVectors& gates, nn::Vector& c,
                                 nn::Vector& h) const {
  const std::size_t hidden = config_.hidden_dim;
  CSDML_REQUIRE(c.size() == hidden && h.size() == hidden, "bad state size");
  for (std::size_t j = 0; j < hidden; ++j) {
    c[j] = gates.act[nn::kForget][j] * c[j] +
           gates.act[nn::kInput][j] * gates.act[nn::kCandidate][j];
    h[j] = gates.act[nn::kOutput][j] *
           nn::apply_cell_activation(config_.activation, c[j]);
  }
}

double FloatDatapath::dense(const nn::Vector& h) const {
  return fixedpt::sigmoid(nn::dot(params_->dense_w, h) + params_->dense_b);
}

double FloatDatapath::infer(const nn::Sequence& sequence) const {
  CSDML_REQUIRE(!sequence.empty(), "empty sequence");
  nn::Vector h(config_.hidden_dim, 0.0);
  nn::Vector c(config_.hidden_dim, 0.0);
  for (const nn::TokenId token : sequence) {
    const nn::Vector x = preprocess(token);
    const GateVectors g = gates(x, h);
    hidden_state(g, c, h);
  }
  return dense(h);
}

// --- fixed-point datapath -------------------------------------------------

FixedDatapath::FixedDatapath(const nn::LstmConfig& config,
                             const nn::LstmParams& params, std::int64_t scale)
    : config_(config), scale_(scale) {
  CSDML_REQUIRE(scale > 0, "scale must be positive");
  const std::size_t hidden = config.hidden_dim;
  const std::size_t embed = config.embed_dim;

  embedding_rows_.resize(static_cast<std::size_t>(config.vocab_size));
  for (std::size_t r = 0; r < embedding_rows_.size(); ++r) {
    embedding_rows_[r].reserve(embed);
    for (std::size_t c = 0; c < embed; ++c) {
      embedding_rows_[r].push_back(fx(params.embedding(r, c)));
    }
  }
  for (std::size_t g = 0; g < nn::kNumGates; ++g) {
    w_x_cols_[g].resize(hidden);
    w_h_cols_[g].resize(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      w_x_cols_[g][j].reserve(embed);
      for (std::size_t i = 0; i < embed; ++i) {
        w_x_cols_[g][j].push_back(fx(params.w_x[g](i, j)));
      }
      w_h_cols_[g][j].reserve(hidden);
      for (std::size_t i = 0; i < hidden; ++i) {
        w_h_cols_[g][j].push_back(fx(params.w_h[g](i, j)));
      }
    }
    bias_[g].reserve(hidden);
    for (std::size_t j = 0; j < hidden; ++j) bias_[g].push_back(fx(params.bias[g][j]));
  }
  dense_w_.reserve(hidden);
  for (std::size_t j = 0; j < hidden; ++j) dense_w_.push_back(fx(params.dense_w[j]));
  dense_b_ = fx(params.dense_b);
}

FixedVector FixedDatapath::preprocess(nn::TokenId token) const {
  CSDML_REQUIRE(token >= 0 && token < config_.vocab_size, "token out of range");
  return embedding_rows_[static_cast<std::size_t>(token)];
}

FixedGateVectors FixedDatapath::gates(const FixedVector& x,
                                      const FixedVector& h) const {
  const std::size_t hidden = config_.hidden_dim;
  FixedGateVectors out;
  for (std::size_t g = 0; g < nn::kNumGates; ++g) {
    out.act[g].reserve(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      fixedpt::ScaledFixed acc = bias_[g][j];
      const FixedVector& wx = w_x_cols_[g][j];
      for (std::size_t i = 0; i < x.size(); ++i) acc += wx[i] * x[i];
      const FixedVector& wh = w_h_cols_[g][j];
      for (std::size_t i = 0; i < h.size(); ++i) acc += wh[i] * h[i];
      // Gates use the PLAN sigmoid; the candidate uses softsign (the paper
      // replaces every tanh with softsign on the FPGA).
      out.act[g].push_back(g == nn::kCandidate ? fixedpt::softsign_fixed(acc)
                                               : fixedpt::sigmoid_fixed(acc));
    }
  }
  return out;
}

void FixedDatapath::hidden_state(const FixedGateVectors& gates, FixedVector& c,
                                 FixedVector& h) const {
  const std::size_t hidden = config_.hidden_dim;
  CSDML_REQUIRE(c.size() == hidden && h.size() == hidden, "bad state size");
  for (std::size_t j = 0; j < hidden; ++j) {
    c[j] = gates.act[nn::kForget][j] * c[j] +
           gates.act[nn::kInput][j] * gates.act[nn::kCandidate][j];
    h[j] = gates.act[nn::kOutput][j] * fixedpt::softsign_fixed(c[j]);
  }
}

double FixedDatapath::dense(const FixedVector& h) const {
  fixedpt::ScaledFixed acc = dense_b_;
  for (std::size_t j = 0; j < h.size(); ++j) acc += dense_w_[j] * h[j];
  return fixedpt::sigmoid_fixed(acc).to_double();
}

double FixedDatapath::infer(const nn::Sequence& sequence) const {
  CSDML_REQUIRE(!sequence.empty(), "empty sequence");
  FixedVector h(config_.hidden_dim, fixedpt::ScaledFixed::from_raw(0, scale_));
  FixedVector c(config_.hidden_dim, fixedpt::ScaledFixed::from_raw(0, scale_));
  for (const nn::TokenId token : sequence) {
    const FixedVector x = preprocess(token);
    const FixedGateVectors g = gates(x, h);
    hidden_state(g, c, h);
  }
  return dense(h);
}

}  // namespace csdml::kernels
