#include "kernels/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "baselines/host_baseline.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "faults/fault_plan.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/span_trace.hpp"

namespace csdml::kernels {

namespace {

/// Request-scoped span covering one engine entry point. If no trace is open
/// (direct engine use, no detector in front) it opens one so the span tree
/// is never orphaned, and closes it again on scope exit — including the
/// exception unwind out of degraded_infer when no fallback is configured.
class ScopedRequestSpan {
 public:
  ScopedRequestSpan(obs::SpanTrace& spans, xrt::Device& device,
                    const char* name)
      : spans_(spans), device_(device) {
    if (!spans_.enabled()) return;
    own_trace_ = !spans_.in_trace();
    if (own_trace_) spans_.begin_trace();
    span_ = spans_.begin_span(name, device_.now());
    active_ = true;
  }
  ScopedRequestSpan(const ScopedRequestSpan&) = delete;
  ScopedRequestSpan& operator=(const ScopedRequestSpan&) = delete;
  ~ScopedRequestSpan() {
    if (!active_) return;
    spans_.end_span(span_, device_.now());
    if (own_trace_) spans_.end_trace();
  }
  bool active() const { return active_; }

 private:
  obs::SpanTrace& spans_;
  xrt::Device& device_;
  obs::SpanId span_{0};
  bool own_trace_{false};
  bool active_{false};
};

/// Serialises the parameters as the raw little-endian float32 image the
/// host program stages into FPGA DDR.
std::vector<std::uint8_t> weight_image(const nn::LstmParams& params) {
  std::vector<float> words;
  const auto push = [&words](const double* values, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      words.push_back(static_cast<float>(values[i]));
    }
  };
  push(params.embedding.data(), params.embedding.size());
  for (std::size_t g = 0; g < nn::kNumGates; ++g) {
    push(params.w_x[g].data(), params.w_x[g].size());
    push(params.w_h[g].data(), params.w_h[g].size());
    push(params.bias[g].data(), params.bias[g].size());
  }
  push(params.dense_w.data(), params.dense_w.size());
  words.push_back(static_cast<float>(params.dense_b));

  std::vector<std::uint8_t> bytes(words.size() * sizeof(float));
  std::memcpy(bytes.data(), words.data(), bytes.size());
  return bytes;
}

std::vector<std::uint8_t> sequence_image(const nn::Sequence& sequence) {
  std::vector<std::uint8_t> bytes(sequence.size() * sizeof(nn::TokenId));
  std::memcpy(bytes.data(), sequence.data(), bytes.size());
  return bytes;
}

}  // namespace

CsdLstmEngine::CsdLstmEngine(xrt::Device& device, const nn::LstmConfig& model_config,
                             const nn::LstmParams& params, EngineConfig config)
    : device_(device), model_config_(model_config), params_(params),
      config_(config) {
  CSDML_REQUIRE(config_.gate_cu_count >= 1 && config_.gate_cu_count <= 4,
                "gate CU count must be in [1, 4]");
  build_datapath(slots_[0]);

  // Build the xclbin: one preprocess kernel, `gate_cu_count` gate CUs, one
  // hidden-state kernel.
  xrt::Xclbin xclbin;
  xclbin.name = std::string("lstm_") + optimization_name(config_.level);
  xclbin.kernels["kernel_preprocess"] = make_preprocess_spec(
      model_config_, config_.level, config_.gate_cu_count, config_.link);
  const hls::KernelSpec gate =
      make_gates_spec(model_config_, config_.level, config_.link);
  for (std::uint32_t cu = 0; cu < config_.gate_cu_count; ++cu) {
    hls::KernelSpec copy = gate;
    copy.name = "kernel_gates_cu" + std::to_string(cu);
    xclbin.kernels[copy.name] = std::move(copy);
  }
  xclbin.kernels["kernel_hidden_state"] = make_hidden_state_spec(
      model_config_, config_.level, config_.gate_cu_count, config_.link);
  device_.load_xclbin(xclbin);

  initialise();
}

CsdLstmEngine::CsdLstmEngine(xrt::Device& device, const nn::ModelSnapshot& snapshot,
                             EngineConfig config)
    : CsdLstmEngine(device, snapshot.config, snapshot.params, config) {}

void CsdLstmEngine::build_datapath(DatapathSlot& slot) {
  // One datapath per slot, not two: fixed-point mode never reads the float
  // path (Vanilla/II change timing, not arithmetic). Staging time (this
  // includes the token-table build) is tracked so CTI hot swaps stay
  // observable.
  const auto start = std::chrono::steady_clock::now();
  if (config_.level == OptimizationLevel::FixedPoint) {
    slot.fixed_path = std::make_unique<FixedDatapath>(model_config_, params_,
                                                      config_.fixed_scale);
    slot.float_path.reset();
  } else {
    slot.float_path = std::make_unique<FloatDatapath>(model_config_, params_);
    slot.fixed_path.reset();
  }
  const double elapsed_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                start)
          .count();
  obs::registry().observe("engine.weight_table_rebuild_us", elapsed_us);
}

double CsdLstmEngine::forward(const DatapathSlot& slot, nn::TokenSpan sequence,
                              FloatScratch& float_scratch,
                              FixedScratch& fixed_scratch) const {
  return config_.level == OptimizationLevel::FixedPoint
             ? slot.fixed_path->infer(sequence, fixed_scratch)
             : slot.float_path->infer(sequence, float_scratch);
}

ThreadPool& CsdLstmEngine::batch_pool() {
  std::lock_guard<std::mutex> lock(batch_pool_mutex_);
  if (batch_pool_ == nullptr) {
    batch_pool_ = std::make_unique<ThreadPool>(config_.batch_threads);
  }
  return *batch_pool_;
}

void CsdLstmEngine::set_fallback(const baselines::HostBaseline* fallback) {
  fallback_.store(fallback, std::memory_order_release);
}

void CsdLstmEngine::restore_health() {
  if (!healthy_.exchange(true, std::memory_order_relaxed)) {
    obs::registry().add_counter("engine.recoveries");
  }
  degraded_serves_.store(0, std::memory_order_relaxed);
}

bool CsdLstmEngine::attempt_launch() {
  faults::FaultPlan* plan = device_.board().fault_plan();
  if (plan == nullptr) return true;
  obs::MetricsRegistry& metrics = obs::registry();
  obs::SpanTrace& spans = device_.board().span_trace();
  const bool traced = spans.enabled() && spans.in_trace();
  for (std::uint32_t attempt = 0; attempt < config_.retry.max_attempts;
       ++attempt) {
    if (!plan->should_inject(faults::FaultKind::XrtLaunchFailure)) {
      if (attempt > 0) {
        metrics.add_counter("engine.retry_successes");
        if (traced) spans.tag_current("retries", std::to_string(attempt));
      }
      return true;
    }
    metrics.add_counter("engine.launch_faults");
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::Fault, "engine", "launch_fault", device_.now(),
        spans.current_trace(), attempt + 1);
    if (attempt + 1 < config_.retry.max_attempts) {
      // Exponential backoff before the next attempt, charged to the
      // simulated clock like any other device-side wait.
      const Duration backoff =
          config_.retry.base_backoff * static_cast<std::int64_t>(1u << attempt);
      device_.advance_to(device_.now() + backoff);
      metrics.add_counter("engine.retries");
      metrics.observe("engine.retry_backoff_us", backoff.as_microseconds());
      obs::FlightRecorder::instance().record(
          obs::FlightEventKind::Retry, "engine", "launch_backoff",
          device_.now(), spans.current_trace(), attempt + 1);
    }
  }
  if (traced) {
    spans.tag_current("retries",
                      std::to_string(config_.retry.max_attempts - 1));
    spans.tag_current("fault", "launch_retries_exhausted");
  }
  if (healthy_.exchange(false, std::memory_order_relaxed)) {
    metrics.add_counter("engine.marked_unhealthy");
    CSDML_LOG_WARN("engine") << "kernel launch retries exhausted, CSD marked "
                                "unhealthy";
    if (traced) spans.tag_current("unhealthy_latch", "1");
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::UnhealthyLatch, "engine", "retries_exhausted",
        device_.now(), spans.current_trace(), config_.retry.max_attempts);
    obs::FlightRecorder::instance().auto_dump("unhealthy_latch");
  }
  degraded_serves_.store(0, std::memory_order_relaxed);
  return false;
}

bool CsdLstmEngine::ensure_csd_available() {
  if (healthy()) return attempt_launch();
  // Unhealthy: probe the pipeline again every Nth degraded serve so a
  // transient fault burst doesn't pin the detector on the host forever.
  const std::uint32_t interval = config_.retry.recovery_probe_interval;
  const std::uint32_t serve =
      degraded_serves_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (interval == 0 || serve % interval != 0) return false;
  faults::FaultPlan* plan = device_.board().fault_plan();
  if (plan != nullptr &&
      plan->should_inject(faults::FaultKind::XrtLaunchFailure)) {
    return false;  // probe failed too; stay degraded
  }
  healthy_.store(true, std::memory_order_relaxed);
  obs::registry().add_counter("engine.recoveries");
  CSDML_LOG_INFO("engine") << "recovery probe succeeded, CSD healthy again";
  obs::SpanTrace& spans = device_.board().span_trace();
  if (spans.enabled() && spans.in_trace()) {
    spans.tag_current("recovered", "1");
  }
  obs::FlightRecorder::instance().record(
      obs::FlightEventKind::Recovery, "engine", "probe_succeeded",
      device_.now(), spans.current_trace(), serve);
  return true;
}

InferenceResult CsdLstmEngine::degraded_infer(nn::TokenSpan sequence) {
  obs::MetricsRegistry& metrics = obs::registry();
  obs::SpanTrace& spans = device_.board().span_trace();
  const bool traced = spans.enabled() && spans.in_trace();
  const baselines::HostBaseline* fallback =
      fallback_.load(std::memory_order_acquire);
  if (fallback == nullptr) {
    metrics.add_counter("engine.unavailable_inferences");
    if (traced) spans.tag_current("csd_unavailable", "1");
    throw faults::CsdUnavailableError(
        "CSD unhealthy and no host fallback configured");
  }
  metrics.add_counter("engine.fallback_inferences");
  const double probability = fallback->infer(sequence);
  // The host serve still advances the single simulated clock so campaign
  // timelines stay monotonic across degraded stretches.
  const Duration host_time = fallback->batch_window_latency(1, sequence.size());
  const TimePoint start = device_.now();
  device_.advance_to(start + host_time);
  device_.board().trace().record("host_fallback", start, start + host_time);
  if (traced) {
    const obs::SpanId span = spans.begin_span("host_fallback", start);
    spans.tag(span, "fallback", "host");
    spans.end_span(span, start + host_time);
    spans.tag_current("fallback", "host");
  }
  obs::FlightRecorder::instance().record(
      obs::FlightEventKind::Fallback, "engine", "host_fallback",
      start + host_time, spans.current_trace());
  metrics.observe("engine.fallback_us", host_time.as_microseconds());

  InferenceResult result;
  result.probability = probability;
  result.label = probability >= 0.5 ? 1 : 0;
  result.device_time = host_time;
  result.degraded = true;
  return result;
}

void CsdLstmEngine::initialise() {
  // Host program initialisation (Fig. 2): the weight/embedding image moves
  // host -> PCIe -> FPGA DDR once, before any inference runs.
  const std::vector<std::uint8_t> image = weight_image(params_);
  weights_bo_.emplace(device_.alloc_bo(image.size(), config_.sequence_bank));
  weights_bo_->write(image);
  weights_bo_->sync_to_device();
  weight_updates_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().add_counter("engine.weight_updates");
  CSDML_LOG_INFO("engine") << "staged weight image"
                           << kv("bytes", image.size())
                           << kv("bank", config_.sequence_bank);
}

void CsdLstmEngine::update_weights(const nn::LstmParams& params) {
  // Writers serialise among themselves; readers are never blocked. The
  // expensive part — rebuilding the datapath and its token table — happens
  // in the inactive slot with no lock shared with the inference hot path.
  std::lock_guard<std::mutex> update_guard(update_mutex_);
  CSDML_REQUIRE(params.embedding.rows() == params_.embedding.rows() &&
                    params.embedding.cols() == params_.embedding.cols() &&
                    params.dense_w.size() == params_.dense_w.size(),
                "update_weights: model architecture changed");
  params_ = params;
  const std::uint64_t epoch = epoch_.load(std::memory_order_seq_cst);
  DatapathSlot& target = slots_[(epoch + 1) & 1];
  // The target slot was live two epochs ago; wait out any straggler still
  // pinned to it. New readers cannot pin it (its epoch is stale, and
  // EpochPin's re-check bounces transient increments), so this drains.
  while (target.readers.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  // Rebuild into the inactive slot (precomputed token table included),
  // then publish: every pin taken after this store reads the new weights.
  build_datapath(target);
  epoch_.store(epoch + 1, std::memory_order_seq_cst);

  // Same xclbin, fresh weight image: the paper's compile-once update path.
  // Staging rides the simulated PCIe link, so this brief step is the only
  // part of a hot swap that contends with inference for the device.
  const std::vector<std::uint8_t> image = weight_image(params_);
  const std::uint32_t update_number =
      weight_updates_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    const auto device_guard = lock_device();
    weights_bo_->write(image);
    weights_bo_->sync_to_device();
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::WeightUpdate, "engine", "hot_swap",
        device_.now(), device_.board().span_trace().current_trace(),
        update_number);
  }
  obs::registry().add_counter("engine.weight_updates");
  CSDML_LOG_INFO("engine") << "weight update applied"
                           << kv("update", update_number);
}

KernelTimings CsdLstmEngine::per_item_timings() const {
  const hls::HlsCostModel& model = device_.cost_model();
  const Frequency clock = model.clock();

  const hls::KernelReport pre = model.analyze(make_preprocess_spec(
      model_config_, config_.level, config_.gate_cu_count, config_.link));
  const hls::KernelReport gate =
      model.analyze(make_gates_spec(model_config_, config_.level, config_.link));
  const hls::KernelReport hidden = model.analyze(make_hidden_state_spec(
      model_config_, config_.level, config_.gate_cu_count, config_.link));

  KernelTimings timings;
  timings.preprocess = clock.duration_of(pre.total);

  // The four gate vectors are computed by `gate_cu_count` parallel CUs; with
  // fewer CUs than gates, the CUs run ceil(4 / count) rounds.
  const std::uint32_t rounds =
      (static_cast<std::uint32_t>(nn::kNumGates) + config_.gate_cu_count - 1) /
      config_.gate_cu_count;
  if (gates_reports_amortized_ii(config_.level)) {
    // Steady state: the fully partitioned pipeline accepts a new item every
    // II cycles (see specs.hpp).
    const std::uint64_t ii = gate.loops.empty() ? 1 : gate.loops.front().achieved_ii;
    timings.gates = clock.duration_of(Cycles{std::max<std::uint64_t>(ii, 1)}) *
                    static_cast<std::int64_t>(rounds);
  } else {
    timings.gates = clock.duration_of(gate.total) * static_cast<std::int64_t>(rounds);
  }
  timings.hidden_state = clock.duration_of(hidden.total);
  return timings;
}

InferenceResult CsdLstmEngine::infer(nn::TokenSpan sequence) {
  CSDML_REQUIRE(!sequence.empty(), "empty sequence");
  // The device lock serialises concurrent infer/infer_batch callers and
  // the updater's staging step (clock, trace, spans, engine-owned scratch
  // are all single-threaded state); the epoch pin below keeps the datapath
  // alive across a concurrent hot swap without ever blocking on it.
  const auto device_guard = lock_device();
  obs::SpanTrace& spans = device_.board().span_trace();
  ScopedRequestSpan scope(spans, device_, "engine.infer");
  if (!ensure_csd_available()) return degraded_infer(sequence);
  const KernelTimings per_item = per_item_timings();

  // Functional result through the configured datapath (fused table path,
  // engine-owned scratch: allocation-free in steady state).
  double probability;
  {
    const EpochPin pin(*this);
    probability = forward(pin.slot(), sequence, float_scratch_, fixed_scratch_);
  }

  // Timing: preprocess overlaps the previous item's gate/hidden stage
  // (Section III-C), so it is exposed once; every item then pays
  // gates + hidden_state.
  const auto items = static_cast<std::int64_t>(sequence.size());
  const Duration steady = per_item.gates + per_item.hidden_state;
  const Duration total = per_item.preprocess + steady * items;

  const TimePoint start = device_.now();
  device_.advance_to(start + total);
  // Per-kernel spans (aggregated over the sequence) plus the parent span,
  // so trace exports show the Fig. 3 breakdown per classification.
  sim::Trace& trace = device_.board().trace();
  const TimePoint preprocess_done = start + per_item.preprocess;
  const TimePoint gates_done = preprocess_done + per_item.gates * items;
  trace.record("kernel_preprocess", start, preprocess_done);
  trace.record("kernel_gates", preprocess_done, gates_done);
  trace.record("kernel_hidden_state", gates_done, start + total);
  trace.record("lstm_sequence", start, start + total);
  if (scope.active()) {
    const obs::SpanId seq_span = spans.begin_span("lstm_sequence", start);
    obs::record_span(spans, "kernel_preprocess", start, preprocess_done);
    obs::record_span(spans, "kernel_gates", preprocess_done, gates_done);
    obs::record_span(spans, "kernel_hidden_state", gates_done, start + total);
    spans.end_span(seq_span, start + total);
  }

  obs::MetricsRegistry& metrics = obs::registry();
  metrics.add_counter("engine.inferences");
  metrics.observe("engine.kernel.preprocess_us",
                  per_item.preprocess.as_microseconds());
  metrics.observe("engine.kernel.gates_us", per_item.gates.as_microseconds());
  metrics.observe("engine.kernel.hidden_state_us",
                  per_item.hidden_state.as_microseconds());
  metrics.observe("engine.sequence_us", total.as_microseconds());

  InferenceResult result;
  result.probability = probability;
  result.label = probability >= 0.5 ? 1 : 0;
  result.device_time = total;
  result.per_item = per_item;
  return result;
}

CsdLstmEngine::BatchResult CsdLstmEngine::infer_batch(
    const std::vector<nn::Sequence>& sequences) {
  CSDML_REQUIRE(!sequences.empty(), "empty batch");
  const auto device_guard = lock_device();
  obs::SpanTrace& spans = device_.board().span_trace();
  ScopedRequestSpan scope(spans, device_, "engine.infer_batch");

  BatchResult result;
  result.probabilities.resize(sequences.size());
  result.labels.resize(sequences.size());
  std::int64_t total_items = 0;
  for (const nn::Sequence& sequence : sequences) {
    CSDML_REQUIRE(!sequence.empty(), "empty sequence in batch");
    total_items += static_cast<std::int64_t>(sequence.size());
  }

  // One availability decision per batch (the whole batch rides one
  // pipeline launch); a degraded batch is served window-by-window from
  // the host fallback so every classification is still produced.
  if (!ensure_csd_available()) {
    Duration total{};
    for (std::size_t i = 0; i < sequences.size(); ++i) {
      const InferenceResult one = degraded_infer(sequences[i]);
      result.probabilities[i] = one.probability;
      result.labels[i] = one.label;
      total += one.device_time;
    }
    result.device_time = total;
    const double degraded_seconds = static_cast<double>(total.picos) * 1e-12;
    result.windows_per_second =
        degraded_seconds > 0.0
            ? static_cast<double>(sequences.size()) / degraded_seconds
            : 0.0;
    result.degraded = true;
    obs::registry().add_counter("engine.batch_degraded");
    return result;
  }

  const KernelTimings per_item = per_item_timings();
  const Duration steady = per_item.gates + per_item.hidden_state;

  // Fan the functional forward passes out across the pool; each executor
  // owns one scratch pair, results land at their sequence index. One epoch
  // pin covers every worker: they all read the slot resolved here, and the
  // pin keeps a concurrent hot swap from rebuilding it mid-batch.
  ThreadPool& pool = batch_pool();
  std::vector<FloatScratch> float_scratch(pool.thread_count());
  std::vector<FixedScratch> fixed_scratch(pool.thread_count());
  {
    const EpochPin pin(*this);
    const DatapathSlot& slot = pin.slot();
    pool.parallel_for(
        sequences.size(), [&](std::size_t executor, std::size_t index) {
          const double probability =
              forward(slot, sequences[index], float_scratch[executor],
                      fixed_scratch[executor]);
          result.probabilities[index] = probability;
          result.labels[index] = probability >= 0.5 ? 1 : 0;
        });
  }
  result.device_time = per_item.preprocess + steady * total_items;

  const TimePoint start = device_.now();
  device_.advance_to(start + result.device_time);
  device_.board().trace().record("lstm_batch", start, start + result.device_time);
  obs::record_span(spans, "lstm_batch", start, start + result.device_time);
  obs::MetricsRegistry& metrics = obs::registry();
  metrics.add_counter("engine.batch_inferences");
  metrics.add_counter("engine.batch_windows", sequences.size());
  metrics.observe("engine.batch_us", result.device_time.as_microseconds());
  metrics.set_gauge("engine.batch_threads",
                    static_cast<double>(pool.thread_count()));

  const double seconds = static_cast<double>(result.device_time.picos) * 1e-12;
  result.windows_per_second =
      seconds > 0.0 ? static_cast<double>(sequences.size()) / seconds : 0.0;
  return result;
}

CsdLstmEngine::SsdInferenceResult CsdLstmEngine::infer_from_ssd(
    std::uint64_t lba, std::uint32_t block_count, const nn::Sequence& sequence,
    bool p2p) {
  // Recursive device lock: the nested infer() below re-acquires it.
  const auto device_guard = lock_device();
  csd::SmartSsd& board = device_.board();
  ScopedRequestSpan scope(board.span_trace(), device_, "engine.infer_from_ssd");
  if (scope.active()) {
    board.span_trace().tag_current("path", p2p ? "p2p" : "host");
  }
  const TimePoint start = device_.now();

  // Stage the sequence image on the SSD so the read returns real bytes.
  board.ssd().write(lba, sequence_image(sequence), start);

  const csd::TransferResult transfer =
      p2p ? board.p2p_read_to_fpga(lba, block_count, config_.sequence_bank, 0, start)
          : board.host_read_to_fpga(lba, block_count, config_.sequence_bank, 0,
                                    start);
  device_.advance_to(transfer.done);

  SsdInferenceResult result;
  result.transfer_time = transfer.done - start;
  result.inference = infer(sequence);
  return result;
}

double CsdLstmEngine::fpga_utilization() const {
  return device_.board().fpga().utilization();
}

}  // namespace csdml::kernels
