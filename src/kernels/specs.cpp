#include "kernels/specs.hpp"

#include "common/error.hpp"

namespace csdml::kernels {

using hls::AxiTransferSpec;
using hls::BufferBinding;
using hls::KernelSpec;
using hls::LocalBufferSpec;
using hls::LoopOp;
using hls::LoopSpec;
using hls::OpKind;

const char* optimization_name(OptimizationLevel level) {
  switch (level) {
    case OptimizationLevel::Vanilla: return "vanilla";
    case OptimizationLevel::II: return "ii";
    case OptimizationLevel::FixedPoint: return "fixed-point";
  }
  throw PreconditionError("unknown optimization level");
}

namespace {

constexpr std::uint32_t kWordBytes = 4;  // float32 / scaled int32 words

bool optimized(OptimizationLevel level) {
  return level != OptimizationLevel::Vanilla;
}

bool fixed_point(OptimizationLevel level) {
  return level == OptimizationLevel::FixedPoint;
}

}  // namespace

namespace {

/// A pipelined register-to-register FIFO hand-off of `words` 32-bit words
/// (the streaming port of Section III-C).
LoopSpec stream_io_loop(const std::string& name, std::uint64_t words) {
  LoopSpec loop;
  loop.name = name;
  loop.trip_count = words;
  loop.body_ops = {LoopOp{OpKind::Select, 1}};
  loop.buffer_accesses = 1;
  loop.binding = BufferBinding::Registers;
  loop.pragmas.pipeline = true;
  loop.pragmas.target_ii = 1;
  return loop;
}

}  // namespace

KernelSpec make_preprocess_spec(const nn::LstmConfig& config,
                                OptimizationLevel level,
                                std::uint32_t gate_cu_count, KernelLink link) {
  CSDML_REQUIRE(gate_cu_count >= 1, "need at least one gate CU");
  KernelSpec spec;
  spec.name = "kernel_preprocess";

  // Embedding table stays on-chip after host initialisation.
  spec.buffers.push_back(LocalBufferSpec{
      .name = "embedding",
      .size = Bytes{static_cast<std::uint64_t>(config.vocab_size) *
                    config.embed_dim * kWordBytes},
      .binding = BufferBinding::Bram});

  // Gather the one-hot dot product row (paper Section III-B): embed_dim
  // words copied from the table into the outgoing item buffer.
  LoopSpec gather;
  gather.name = "embedding_gather";
  gather.trip_count = config.embed_dim;
  gather.body_ops = {LoopOp{OpKind::IntAdd, 1}};  // address arithmetic
  gather.buffer_accesses = 2;                     // table read + buffer write
  gather.binding = BufferBinding::Bram;
  gather.memory_ports = 2;
  if (optimized(level)) {
    gather.pragmas.pipeline = true;
    gather.pragmas.target_ii = 1;
    gather.pragmas.array_partition_complete = fixed_point(level);
  }
  spec.loops.push_back(gather);

  // One AXI read of the item id stays off-chip in both link modes; the
  // x_t copies ("each CU has its own copies", Section III-C) go over DDR
  // or, in streaming mode, over direct kernel-to-kernel FIFOs.
  const Bytes item_bytes{static_cast<std::uint64_t>(config.embed_dim) * kWordBytes};
  spec.transfers.push_back(AxiTransferSpec{"item_fetch", item_bytes, 1.0});
  if (link == KernelLink::AxiMemory) {
    for (std::uint32_t cu = 0; cu < gate_cu_count; ++cu) {
      spec.transfers.push_back(
          AxiTransferSpec{"x_copy_cu" + std::to_string(cu), item_bytes, 1.0});
    }
  } else {
    spec.loops.push_back(stream_io_loop(
        "x_stream_out", static_cast<std::uint64_t>(config.embed_dim) * gate_cu_count));
  }
  return spec;
}

KernelSpec make_gates_spec(const nn::LstmConfig& config, OptimizationLevel level,
                           KernelLink link) {
  KernelSpec spec;
  spec.name = "kernel_gates";
  // Section III-C: DATAFLOW inside the CUs overlaps the output write with
  // the MAC pipeline.
  spec.dataflow = true;

  const auto macs =
      static_cast<std::uint32_t>(config.embed_dim + config.hidden_dim);

  spec.buffers.push_back(LocalBufferSpec{
      .name = "gate_weights",
      .size = Bytes{static_cast<std::uint64_t>(macs) * config.hidden_dim *
                    kWordBytes},
      .binding = fixed_point(level) ? BufferBinding::Registers
                                    : BufferBinding::Bram});

  LoopSpec outputs;
  outputs.name = "gate_outputs";
  outputs.trip_count = config.hidden_dim;
  if (fixed_point(level)) {
    // Scaled-integer MACs on DSP slices + PLAN sigmoid (shifts/compares)
    // or integer softsign (one bounded divide).
    outputs.body_ops = {LoopOp{OpKind::IntMul, macs}, LoopOp{OpKind::IntAdd, macs},
                        LoopOp{OpKind::IntCmp, 3}, LoopOp{OpKind::Shift, 2},
                        LoopOp{OpKind::Select, 2}};
  } else {
    // Float MACs + float sigmoid (exp then divide).
    outputs.body_ops = {LoopOp{OpKind::FloatMul, macs}, LoopOp{OpKind::FloatAdd, macs},
                        LoopOp{OpKind::FloatExp, 1}, LoopOp{OpKind::FloatDiv, 1}};
  }
  // Per output: `macs` weight reads plus `macs` x/h reads.
  outputs.buffer_accesses = 2 * macs;
  outputs.binding = BufferBinding::Bram;
  // HLS maps the weight array across banked BRAMs; 8 effective ports.
  outputs.memory_ports = 8;
  // Small regular loop: auto-pipelines even without the pragma.
  outputs.pragmas.pipeline = true;
  outputs.pragmas.target_ii = 1;
  if (optimized(level)) {
    // Unroll factor 2: factor 4 would need ~3,200 DSPs across the four
    // float CUs — more than the KU15P has (the resource constraint the
    // paper's Limitations section warns about).
    outputs.pragmas.unroll = 2;
    outputs.pragmas.array_partition_complete = true;
  }
  spec.loops.push_back(outputs);

  // Result vector to kernel_hidden_state (overlapped by DATAFLOW).
  if (link == KernelLink::AxiMemory) {
    spec.transfers.push_back(AxiTransferSpec{
        "gate_out",
        Bytes{static_cast<std::uint64_t>(config.hidden_dim) * kWordBytes}, 1.0});
  } else {
    spec.loops.push_back(stream_io_loop("gate_stream_out", config.hidden_dim));
  }
  return spec;
}

KernelSpec make_hidden_state_spec(const nn::LstmConfig& config,
                                  OptimizationLevel level,
                                  std::uint32_t gate_cu_count, KernelLink link) {
  CSDML_REQUIRE(gate_cu_count >= 1, "need at least one gate CU");
  KernelSpec spec;
  spec.name = "kernel_hidden_state";

  // C_t lives entirely inside this kernel (Section III-B).
  spec.buffers.push_back(LocalBufferSpec{
      .name = "cell_state",
      .size = Bytes{static_cast<std::uint64_t>(config.hidden_dim) * kWordBytes},
      .binding = BufferBinding::Bram});
  spec.buffers.push_back(LocalBufferSpec{
      .name = "dense_weights",
      .size = Bytes{static_cast<std::uint64_t>(config.hidden_dim + 1) * kWordBytes},
      .binding = BufferBinding::Bram});

  LoopSpec update;
  update.name = "cell_update";
  update.trip_count = config.hidden_dim;
  if (fixed_point(level)) {
    // C = f*C + i*C'; h = o * softsign(C): three DSP multiplies, one add,
    // one bounded integer divide for softsign.
    update.body_ops = {LoopOp{OpKind::IntMul, 3}, LoopOp{OpKind::IntAdd, 2},
                       LoopOp{OpKind::IntDiv, 1}};
  } else {
    update.body_ops = {LoopOp{OpKind::FloatMul, 3}, LoopOp{OpKind::FloatAdd, 2},
                       LoopOp{OpKind::FloatDiv, 1}};
  }
  // Reads i, f, o, C', C; writes C and h.
  update.buffer_accesses = 7;
  update.binding = BufferBinding::Bram;
  update.memory_ports = 2;
  if (optimized(level)) {
    update.pragmas.pipeline = true;
    update.pragmas.target_ii = 1;
    // Only the fixed-point build partitions the state buffers completely;
    // in the float build the wide operands keep them in banked BRAM.
    update.pragmas.array_partition_complete = fixed_point(level);
  }
  // Vanilla: the static item counter and the conditional final dense layer
  // keep this loop from auto-pipelining — the effect the II bar of Fig. 3
  // then removes.
  spec.loops.push_back(update);

  // Gate vectors in from each CU, h_t copies back out to each CU, plus the
  // (tiny) classification word written when the sequence completes. In
  // streaming mode the vector traffic rides kernel-to-kernel FIFOs and
  // only the prediction leaves the fabric.
  const Bytes vec_bytes{static_cast<std::uint64_t>(config.hidden_dim) * kWordBytes};
  if (link == KernelLink::AxiMemory) {
    for (std::uint32_t cu = 0; cu < gate_cu_count; ++cu) {
      spec.transfers.push_back(
          AxiTransferSpec{"gate_in_cu" + std::to_string(cu), vec_bytes, 1.0});
      spec.transfers.push_back(
          AxiTransferSpec{"h_copy_cu" + std::to_string(cu), vec_bytes, 1.0});
    }
  } else {
    spec.loops.push_back(stream_io_loop(
        "state_stream_io",
        static_cast<std::uint64_t>(config.hidden_dim) * (gate_cu_count + 1)));
  }
  spec.transfers.push_back(AxiTransferSpec{"prediction_out", Bytes{kWordBytes}, 1.0});
  return spec;
}

bool gates_reports_amortized_ii(OptimizationLevel level) {
  return level == OptimizationLevel::FixedPoint;
}

}  // namespace csdml::kernels
