// Event-driven simulation of the Fig. 2 kernel pipeline.
//
// The engine computes sequence latency with a closed-form overlap formula
// (preprocess exposed once, then gates+hidden per item). This module
// replays the same pipeline through the discrete-event core with explicit
// dependencies —
//
//   preprocess[i]  needs: preprocess[i-1] done, x-buffer free (gates[i-1]
//                         started)
//   gates[i]       needs: preprocess[i] done, hidden[i-1] done (h_{t-1})
//   hidden[i]      needs: gates[i] done
//
// — so it is the ground truth the analytic formula is validated against
// (tests assert they agree whenever preprocess fits under the steady
// stage, which holds for every configuration in this design), and it
// yields a full per-kernel span trace for inspection.
#pragma once

#include "hls/cost_model.hpp"
#include "kernels/specs.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"

namespace csdml::kernels {

struct PipelineSimConfig {
  OptimizationLevel level{OptimizationLevel::FixedPoint};
  std::uint32_t gate_cu_count{4};
  KernelLink link{KernelLink::AxiMemory};
};

struct PipelineSimResult {
  Duration total;            ///< completion time of the last hidden stage
  std::size_t items{0};
  sim::Trace trace;          ///< spans: preprocess[i], gates[i], hidden[i]

  Duration per_item_steady() const {
    return items > 1 ? Duration{(total.picos) / static_cast<std::int64_t>(items)}
                     : total;
  }
};

/// Runs `items` sequence items through the event-driven pipeline using the
/// cost model's per-kernel durations.
PipelineSimResult simulate_pipeline(const hls::HlsCostModel& model,
                                    const nn::LstmConfig& config,
                                    const PipelineSimConfig& pipeline,
                                    std::size_t items);

/// Same engine-style stage durations the simulation uses (exposed for the
/// cross-validation tests).
struct StageDurations {
  Duration preprocess;
  Duration gates;
  Duration hidden;
};
StageDurations stage_durations(const hls::HlsCostModel& model,
                               const nn::LstmConfig& config,
                               const PipelineSimConfig& pipeline);

}  // namespace csdml::kernels
