// Builds the paper's dataset: fixed-length API-call windows extracted from
// sandbox traces with a sliding window.
//
// Paper appendix: windows of length 100, starting at the first call of
// each variant "to promote early detection", then sub-sequences at
// different execution stages via a sliding window; 13,340 ransomware and
// 15,660 benign windows (29 K total, 46% ransomware).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/dataset.hpp"
#include "ransomware/sandbox.hpp"

namespace csdml::ransomware {

/// Extracts length-`window` sub-sequences at `stride` offsets (always
/// includes the window at offset 0). Requires trace.size() >= window.
std::vector<nn::Sequence> sliding_windows(const std::vector<nn::TokenId>& trace,
                                          std::size_t window, std::size_t stride);

struct DatasetSpec {
  std::size_t window_length{100};
  std::size_t stride{25};
  std::size_t ransomware_windows{13'340};
  std::size_t benign_windows{15'660};
  std::uint64_t seed{2024};

  /// The paper's full-size dataset.
  static DatasetSpec paper();
  /// A smaller spec (≈1/10 size) for fast tests and CI-scale training.
  static DatasetSpec small();
};

/// Per-family statistics for the Table II report.
struct FamilyStats {
  std::string family;
  std::uint32_t variants{0};
  bool encrypts{false};
  bool self_propagates{false};
  std::size_t windows{0};
};

struct BuiltDataset {
  nn::SequenceDataset data;     ///< shuffled, ready for split/training
  std::vector<FamilyStats> family_stats;
  std::size_t benign_sources{0};
};

/// Generates traces for every family variant and benign profile, windows
/// them, balances counts to the spec, merges and shuffles.
BuiltDataset build_dataset(const DatasetSpec& spec);

}  // namespace csdml::ransomware
