// Family and benign-application profiles.
//
// The ten ransomware families reproduce Table II of the paper, including
// the per-family variant counts and the encryption / self-propagation
// flags (all aggregated variants encrypt; Ryuk, Lockbit, Wannacry and
// BadRabbit also self-propagate). Each family carries a phase script — an
// ordered motif mix — so different families produce recognisably
// different traces, and each numbered variant perturbs the script
// deterministically (the paper collected 78 variants; the per-family
// counts in its Table II sum to 76, which we follow since they are the
// reproducible numbers).
//
// The benign corpus models the paper's: 30 popular portable applications
// (Top-Ten lists of The Portable Freeware Collection, 2018-2021) plus
// manual desktop interaction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ransomware/motifs.hpp"

namespace csdml::ransomware {

/// One phase of a trace script: a motif repeated a random number of times.
struct Phase {
  MotifKind motif;
  std::uint32_t min_repeats{1};
  std::uint32_t max_repeats{1};
};

struct FamilyProfile {
  std::string name;
  std::uint32_t variants{1};
  bool encrypts{true};
  bool self_propagates{false};
  std::vector<Phase> script;
};

struct BenignProfile {
  std::string name;
  bool manual_interaction{false};  ///< vs. "popular application" execution
  std::vector<Phase> script;
};

/// The ten families of Table II, with their scripts.
const std::vector<FamilyProfile>& ransomware_families();

/// 30 popular applications + manual interaction profiles.
const std::vector<BenignProfile>& benign_profiles();

/// Total variant count across all families (Table II).
std::uint32_t total_variant_count();

}  // namespace csdml::ransomware
