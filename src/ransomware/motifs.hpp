// Behavioural motifs: short, parameterised API-call patterns that traces
// are composed from.
//
// Malicious motifs follow the canonical ransomware kill chain observed in
// Cuckoo reports (dropper startup, anti-analysis probes, key generation,
// file discovery, the encrypt-rename loop, shadow-copy wiping, persistence,
// the ransom note, C2 beacons, SMB propagation). Benign motifs model the
// paper's benign corpus: popular portable applications plus manual
// interaction (document editing, browsing, media playback, updates).
//
// Benign profiles intentionally use *some* crypto APIs (hash checks,
// TLS-adjacent random generation) so the classifier cannot shortcut on
// "any crypto call => ransomware"; what separates the classes is the
// joint pattern (e.g. CryptEncrypt inside a Find/Read/Write/Move loop).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/dataset.hpp"

namespace csdml::ransomware {

enum class MotifKind {
  // malicious
  DropperStartup,
  AntiAnalysis,
  Recon,
  KeyGeneration,
  FileDiscovery,
  EncryptionLoop,
  ShadowCopyWipe,
  RegistryPersistence,
  RansomNote,
  C2Beacon,
  SmbPropagation,
  ServiceTampering,
  SelfDelete,
  // benign
  AppStartup,
  ConfigLoad,
  DocumentOpen,
  DocumentSave,
  UiIdle,
  WebRequest,
  ClipboardLikeUse,
  FileBrowse,
  SoftwareUpdate,
  MediaPlayback,
  InstallerChecksum,
  BackgroundSync,
  /// Archiver compressing a file: open/read/write/close/rename — the
  /// encryption loop's shape without the crypto call. A hard negative.
  ArchiveLoop,
  /// Disk-encryption utility encrypting a container: legitimate
  /// CryptEncrypt/BCryptEncrypt use. The hardest negative.
  VolumeEncryptionLoop,
};

const char* motif_name(MotifKind kind);

/// True for motifs only emitted by malicious profiles.
bool is_malicious_motif(MotifKind kind);

/// Appends one instance of the motif to `out`. Randomness controls repeat
/// counts and equivalent-API substitutions (e.g. CreateFileW vs
/// NtCreateFile), which is how variants of one family differ.
void emit_motif(MotifKind kind, Rng& rng, std::vector<nn::TokenId>& out);

}  // namespace csdml::ransomware
