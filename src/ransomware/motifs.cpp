#include "ransomware/motifs.hpp"

#include <initializer_list>

#include "common/error.hpp"
#include "ransomware/api_vocab.hpp"

namespace csdml::ransomware {

const char* motif_name(MotifKind kind) {
  switch (kind) {
    case MotifKind::DropperStartup: return "dropper_startup";
    case MotifKind::AntiAnalysis: return "anti_analysis";
    case MotifKind::Recon: return "recon";
    case MotifKind::KeyGeneration: return "key_generation";
    case MotifKind::FileDiscovery: return "file_discovery";
    case MotifKind::EncryptionLoop: return "encryption_loop";
    case MotifKind::ShadowCopyWipe: return "shadow_copy_wipe";
    case MotifKind::RegistryPersistence: return "registry_persistence";
    case MotifKind::RansomNote: return "ransom_note";
    case MotifKind::C2Beacon: return "c2_beacon";
    case MotifKind::SmbPropagation: return "smb_propagation";
    case MotifKind::ServiceTampering: return "service_tampering";
    case MotifKind::SelfDelete: return "self_delete";
    case MotifKind::AppStartup: return "app_startup";
    case MotifKind::ConfigLoad: return "config_load";
    case MotifKind::DocumentOpen: return "document_open";
    case MotifKind::DocumentSave: return "document_save";
    case MotifKind::UiIdle: return "ui_idle";
    case MotifKind::WebRequest: return "web_request";
    case MotifKind::ClipboardLikeUse: return "clipboard_use";
    case MotifKind::FileBrowse: return "file_browse";
    case MotifKind::SoftwareUpdate: return "software_update";
    case MotifKind::MediaPlayback: return "media_playback";
    case MotifKind::InstallerChecksum: return "installer_checksum";
    case MotifKind::BackgroundSync: return "background_sync";
    case MotifKind::ArchiveLoop: return "archive_loop";
    case MotifKind::VolumeEncryptionLoop: return "volume_encryption_loop";
  }
  throw PreconditionError("unknown motif");
}

bool is_malicious_motif(MotifKind kind) {
  switch (kind) {
    case MotifKind::DropperStartup:
    case MotifKind::AntiAnalysis:
    case MotifKind::Recon:
    case MotifKind::KeyGeneration:
    case MotifKind::FileDiscovery:
    case MotifKind::EncryptionLoop:
    case MotifKind::ShadowCopyWipe:
    case MotifKind::RegistryPersistence:
    case MotifKind::RansomNote:
    case MotifKind::C2Beacon:
    case MotifKind::SmbPropagation:
    case MotifKind::ServiceTampering:
    case MotifKind::SelfDelete:
      return true;
    default:
      return false;
  }
}

namespace {

const ApiVocabulary& vocab() { return ApiVocabulary::instance(); }

/// Appends a fixed run of named calls.
void seq(std::vector<nn::TokenId>& out, std::initializer_list<const char*> names) {
  for (const char* name : names) out.push_back(vocab().require(name));
}

/// Picks one of several equivalent calls (variant-level substitution).
void pick(std::vector<nn::TokenId>& out, Rng& rng,
          std::initializer_list<const char*> options) {
  std::vector<const char*> list(options);
  out.push_back(vocab().require(rng.pick(list)));
}

}  // namespace

void emit_motif(MotifKind kind, Rng& rng, std::vector<nn::TokenId>& out) {
  switch (kind) {
    case MotifKind::DropperStartup: {
      seq(out, {"GetCommandLineW", "GetModuleHandleW", "GetModuleFileNameW"});
      pick(out, rng, {"LoadLibraryW", "LoadLibraryA", "LdrLoadDll"});
      const auto imports = rng.uniform_int(4, 9);
      for (std::int64_t i = 0; i < imports; ++i) {
        pick(out, rng, {"GetProcAddress", "LdrGetProcedureAddress"});
      }
      seq(out, {"VirtualAlloc", "VirtualProtect"});
      if (rng.chance(0.5)) seq(out, {"CreateMutexW", "GetLastError"});
      break;
    }
    case MotifKind::AntiAnalysis: {
      seq(out, {"IsDebuggerPresent", "GetTickCount"});
      if (rng.chance(0.6)) seq(out, {"Sleep", "GetTickCount"});
      if (rng.chance(0.5)) seq(out, {"NtQueryInformationProcess"});
      pick(out, rng, {"GetSystemInfo", "GetNativeSystemInfo"});
      if (rng.chance(0.4)) {
        seq(out, {"CreateToolhelp32Snapshot", "Process32FirstW", "Process32NextW",
                  "Process32NextW", "CloseHandle"});
      }
      break;
    }
    case MotifKind::Recon: {
      seq(out, {"GetComputerNameW", "GetUserNameW", "GetVersionExW",
                "GetLogicalDrives"});
      const auto drives = rng.uniform_int(1, 4);
      for (std::int64_t i = 0; i < drives; ++i) {
        seq(out, {"GetDriveTypeW", "GetVolumeInformationW", "GetDiskFreeSpaceExW"});
      }
      if (rng.chance(0.5)) seq(out, {"GetEnvironmentVariableW", "GetWindowsDirectoryW"});
      break;
    }
    case MotifKind::KeyGeneration: {
      if (rng.chance(0.5)) {
        seq(out, {"CryptAcquireContextW", "CryptGenRandom", "CryptGenKey",
                  "CryptExportKey"});
        if (rng.chance(0.6)) seq(out, {"CryptImportKey"});
      } else {
        seq(out, {"BCryptOpenAlgorithmProvider", "BCryptGenRandom",
                  "BCryptGenerateSymmetricKey"});
      }
      break;
    }
    case MotifKind::FileDiscovery: {
      pick(out, rng, {"FindFirstFileW", "FindFirstFileExW", "NtQueryDirectoryFile"});
      const auto entries = rng.uniform_int(3, 8);
      for (std::int64_t i = 0; i < entries; ++i) {
        seq(out, {"FindNextFileW", "GetFileAttributesW"});
      }
      seq(out, {"FindClose"});
      break;
    }
    case MotifKind::EncryptionLoop: {
      // One file: open, read, encrypt, overwrite, rename. The signature
      // pattern of every family in Table II (all variants encrypt).
      pick(out, rng, {"CreateFileW", "NtCreateFile", "NtOpenFile"});
      pick(out, rng, {"GetFileSizeEx", "GetFileSize"});
      const auto chunks = rng.uniform_int(1, 3);
      for (std::int64_t i = 0; i < chunks; ++i) {
        pick(out, rng, {"ReadFile", "NtReadFile"});
        pick(out, rng, {"CryptEncrypt", "BCryptEncrypt"});
        pick(out, rng, {"WriteFile", "NtWriteFile"});
      }
      if (rng.chance(0.4)) seq(out, {"SetEndOfFile", "FlushFileBuffers"});
      pick(out, rng, {"CloseHandle", "NtClose"});
      pick(out, rng, {"MoveFileExW", "MoveFileW", "ReplaceFileW"});
      if (rng.chance(0.25)) seq(out, {"SetFileAttributesW"});
      break;
    }
    case MotifKind::ShadowCopyWipe: {
      // vssadmin/wmic spawn + service stop.
      pick(out, rng, {"CreateProcessW", "CreateProcessInternalW", "ShellExecuteExW"});
      seq(out, {"WaitForSingleObject", "GetExitCodeProcess", "CloseHandle"});
      if (rng.chance(0.5)) {
        seq(out, {"OpenSCManagerW", "OpenServiceW", "ControlService",
                  "CloseServiceHandle"});
      }
      break;
    }
    case MotifKind::RegistryPersistence: {
      pick(out, rng, {"RegOpenKeyExW", "RegCreateKeyExW", "NtOpenKey"});
      pick(out, rng, {"RegSetValueExW", "RegSetValueExA", "NtSetValueKey"});
      if (rng.chance(0.4)) seq(out, {"RegQueryValueExW"});
      seq(out, {"RegCloseKey"});
      break;
    }
    case MotifKind::RansomNote: {
      seq(out, {"GetTempPathW", "CreateFileW", "WriteFile", "CloseHandle"});
      if (rng.chance(0.5)) seq(out, {"ShellExecuteW"});
      if (rng.chance(0.35)) seq(out, {"MessageBoxW"});
      if (rng.chance(0.3)) seq(out, {"SetWindowTextW", "ShowWindow"});
      break;
    }
    case MotifKind::C2Beacon: {
      if (rng.chance(0.5)) {
        seq(out, {"WSAStartup", "getaddrinfo", "socket", "connect", "send",
                  "recv", "closesocket"});
      } else {
        seq(out, {"InternetOpenW", "InternetConnectW", "HttpOpenRequestW",
                  "HttpSendRequestW", "InternetReadFile", "InternetCloseHandle"});
      }
      break;
    }
    case MotifKind::SmbPropagation: {
      seq(out, {"NetServerEnum", "NetShareEnum"});
      const auto targets = rng.uniform_int(1, 3);
      for (std::int64_t i = 0; i < targets; ++i) {
        seq(out, {"WNetAddConnection2W", "CopyFileW"});
        pick(out, rng, {"CreateProcessW", "NtCreateUserProcess", "WinExec"});
      }
      if (rng.chance(0.5)) seq(out, {"DnsQuery_W"});
      break;
    }
    case MotifKind::ServiceTampering: {
      seq(out, {"OpenSCManagerW", "EnumServicesStatusExW"});
      const auto victims = rng.uniform_int(1, 3);
      for (std::int64_t i = 0; i < victims; ++i) {
        seq(out, {"OpenServiceW", "ControlService", "CloseServiceHandle"});
      }
      seq(out, {"CloseServiceHandle"});
      break;
    }
    case MotifKind::SelfDelete: {
      seq(out, {"GetModuleFileNameW"});
      pick(out, rng, {"CreateProcessW", "ShellExecuteW", "WinExec"});
      pick(out, rng, {"DeleteFileW", "NtDeleteFile", "MoveFileExW"});
      seq(out, {"ExitProcess"});
      break;
    }
    case MotifKind::AppStartup: {
      seq(out, {"GetCommandLineW", "GetModuleHandleW", "GetModuleFileNameW"});
      const auto imports = rng.uniform_int(3, 8);
      for (std::int64_t i = 0; i < imports; ++i) {
        pick(out, rng, {"LoadLibraryW", "LoadLibraryExW", "GetProcAddress"});
      }
      if (rng.chance(0.7)) {
        seq(out, {"CoInitializeEx", "CreateWindowExW", "ShowWindow",
                  "UpdateWindow"});
      }
      break;
    }
    case MotifKind::ConfigLoad: {
      pick(out, rng, {"RegOpenKeyExW", "RegOpenKeyExA"});
      const auto values = rng.uniform_int(2, 6);
      for (std::int64_t i = 0; i < values; ++i) {
        pick(out, rng, {"RegQueryValueExW", "RegQueryValueExA", "RegEnumValueW"});
      }
      seq(out, {"RegCloseKey"});
      if (rng.chance(0.6)) {
        seq(out, {"SHGetFolderPathW", "CreateFileW", "ReadFile", "CloseHandle"});
      }
      break;
    }
    case MotifKind::DocumentOpen: {
      seq(out, {"CreateFileW", "GetFileSizeEx"});
      const auto reads = rng.uniform_int(2, 6);
      for (std::int64_t i = 0; i < reads; ++i) seq(out, {"ReadFile"});
      seq(out, {"CloseHandle"});
      if (rng.chance(0.5)) seq(out, {"SetWindowTextW", "UpdateWindow"});
      break;
    }
    case MotifKind::DocumentSave: {
      seq(out, {"GetTempFileNameW", "CreateFileW"});
      const auto writes = rng.uniform_int(1, 4);
      for (std::int64_t i = 0; i < writes; ++i) seq(out, {"WriteFile"});
      seq(out, {"FlushFileBuffers", "CloseHandle", "MoveFileExW"});
      break;
    }
    case MotifKind::UiIdle: {
      const auto messages = rng.uniform_int(3, 10);
      for (std::int64_t i = 0; i < messages; ++i) {
        pick(out, rng, {"GetMessageW", "PeekMessageW"});
        seq(out, {"TranslateMessage", "DispatchMessageW"});
      }
      if (rng.chance(0.3)) seq(out, {"GetCursorPos", "SetTimer"});
      break;
    }
    case MotifKind::WebRequest: {
      if (rng.chance(0.5)) {
        seq(out, {"WinHttpOpen", "WinHttpConnect", "WinHttpSendRequest"});
      } else {
        seq(out, {"InternetOpenW", "InternetOpenUrlW", "InternetReadFile",
                  "InternetCloseHandle"});
      }
      if (rng.chance(0.4)) seq(out, {"BCryptGenRandom"});  // TLS nonce
      break;
    }
    case MotifKind::ClipboardLikeUse: {
      seq(out, {"GlobalAlloc", "SendMessageW", "GlobalFree"});
      break;
    }
    case MotifKind::FileBrowse: {
      seq(out, {"SHGetKnownFolderPath", "FindFirstFileW"});
      const auto entries = rng.uniform_int(3, 12);
      for (std::int64_t i = 0; i < entries; ++i) {
        seq(out, {"FindNextFileW"});
        if (rng.chance(0.3)) seq(out, {"GetFileAttributesW"});
      }
      seq(out, {"FindClose"});
      break;
    }
    case MotifKind::SoftwareUpdate: {
      seq(out, {"WinHttpOpen", "WinHttpConnect", "WinHttpSendRequest",
                "CreateFileW", "WriteFile", "CloseHandle"});
      // Signature/hash verification — benign use of crypto APIs.
      seq(out, {"CryptCreateHash", "CryptHashData", "CryptGetHashParam",
                "CryptDestroyHash"});
      break;
    }
    case MotifKind::MediaPlayback: {
      seq(out, {"CreateFileW", "GetFileSizeEx", "CreateFileMappingW",
                "MapViewOfFile"});
      const auto frames = rng.uniform_int(4, 12);
      for (std::int64_t i = 0; i < frames; ++i) {
        pick(out, rng, {"ReadFile", "WaitForSingleObject", "SetEvent"});
      }
      seq(out, {"UnmapViewOfFile", "CloseHandle"});
      break;
    }
    case MotifKind::InstallerChecksum: {
      seq(out, {"CreateFileW", "ReadFile", "CryptCreateHash", "CryptHashData",
                "CryptHashData", "CryptGetHashParam", "CryptDestroyHash",
                "CloseHandle"});
      break;
    }
    case MotifKind::BackgroundSync: {
      seq(out, {"CreateEventW", "WaitForSingleObject"});
      if (rng.chance(0.5)) {
        seq(out, {"WSAStartup", "socket", "connect", "send", "recv",
                  "closesocket"});
      }
      seq(out, {"SetEvent"});
      break;
    }
    case MotifKind::ArchiveLoop: {
      pick(out, rng, {"CreateFileW", "NtCreateFile"});
      pick(out, rng, {"GetFileSizeEx", "GetFileSize"});
      const auto chunks = rng.uniform_int(1, 3);
      for (std::int64_t i = 0; i < chunks; ++i) {
        pick(out, rng, {"ReadFile", "NtReadFile"});
        pick(out, rng, {"WriteFile", "NtWriteFile"});
      }
      if (rng.chance(0.4)) seq(out, {"SetEndOfFile", "FlushFileBuffers"});
      pick(out, rng, {"CloseHandle", "NtClose"});
      if (rng.chance(0.5)) pick(out, rng, {"MoveFileExW", "MoveFileW"});
      break;
    }
    case MotifKind::VolumeEncryptionLoop: {
      pick(out, rng, {"CreateFileW", "NtOpenFile"});
      const auto chunks = rng.uniform_int(1, 3);
      for (std::int64_t i = 0; i < chunks; ++i) {
        pick(out, rng, {"ReadFile", "NtReadFile"});
        pick(out, rng, {"CryptEncrypt", "BCryptEncrypt"});
        pick(out, rng, {"WriteFile", "NtWriteFile"});
      }
      // No rename sweep; container tools seek within one handle instead.
      pick(out, rng, {"SetFilePointerEx", "SetFilePointer"});
      if (rng.chance(0.3)) seq(out, {"DeviceIoControl"});
      pick(out, rng, {"CloseHandle", "NtClose"});
      break;
    }
  }
}

}  // namespace csdml::ransomware
