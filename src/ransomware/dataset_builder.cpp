#include "ransomware/dataset_builder.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace csdml::ransomware {

std::vector<nn::Sequence> sliding_windows(const std::vector<nn::TokenId>& trace,
                                          std::size_t window, std::size_t stride) {
  CSDML_REQUIRE(window > 0 && stride > 0, "window/stride must be positive");
  CSDML_REQUIRE(trace.size() >= window, "trace shorter than the window");
  std::vector<nn::Sequence> out;
  for (std::size_t start = 0; start + window <= trace.size(); start += stride) {
    out.emplace_back(trace.begin() + static_cast<std::ptrdiff_t>(start),
                     trace.begin() + static_cast<std::ptrdiff_t>(start + window));
  }
  return out;
}

DatasetSpec DatasetSpec::paper() { return DatasetSpec{}; }

DatasetSpec DatasetSpec::small() {
  DatasetSpec spec;
  spec.ransomware_windows = 1'334;
  spec.benign_windows = 1'566;
  return spec;
}

namespace {

/// Splits `total` into `parts` near-equal positive shares.
std::vector<std::size_t> distribute(std::size_t total, std::size_t parts) {
  CSDML_REQUIRE(parts > 0, "cannot distribute over zero parts");
  std::vector<std::size_t> shares(parts, total / parts);
  for (std::size_t i = 0; i < total % parts; ++i) ++shares[i];
  return shares;
}

/// Trace length needed for `count` windows of `window` at `stride`.
std::size_t required_length(std::size_t count, std::size_t window,
                            std::size_t stride) {
  CSDML_REQUIRE(count > 0, "need at least one window");
  return window + stride * (count - 1);
}

}  // namespace

BuiltDataset build_dataset(const DatasetSpec& spec) {
  CSDML_REQUIRE(spec.ransomware_windows > 0 && spec.benign_windows > 0,
                "need both classes");
  SandboxConfig sandbox_config;
  sandbox_config.seed = spec.seed;
  const SandboxTraceGenerator sandbox(sandbox_config);

  BuiltDataset built;

  // --- ransomware windows, spread over every variant of every family ---
  const auto& families = ransomware_families();
  std::size_t variant_total = 0;
  for (const auto& family : families) variant_total += family.variants;
  const std::vector<std::size_t> variant_share =
      distribute(spec.ransomware_windows, variant_total);

  std::size_t variant_index = 0;
  for (const auto& family : families) {
    FamilyStats stats;
    stats.family = family.name;
    stats.variants = family.variants;
    stats.encrypts = family.encrypts;
    stats.self_propagates = family.self_propagates;
    for (std::uint32_t v = 0; v < family.variants; ++v, ++variant_index) {
      const std::size_t want = variant_share[variant_index];
      if (want == 0) continue;
      const std::size_t length =
          required_length(want, spec.window_length, spec.stride);
      const auto trace = sandbox.ransomware_trace(family, v, length);
      auto windows = sliding_windows(trace, spec.window_length, spec.stride);
      windows.resize(want);  // trace may cover a few extra strides
      for (auto& w : windows) {
        built.data.sequences.push_back(std::move(w));
        built.data.labels.push_back(1);
      }
      stats.windows += want;
    }
    built.family_stats.push_back(std::move(stats));
  }

  // --- benign windows over apps + manual sessions ---
  const auto& benign = benign_profiles();
  built.benign_sources = benign.size();
  const std::vector<std::size_t> benign_share =
      distribute(spec.benign_windows, benign.size());
  for (std::size_t p = 0; p < benign.size(); ++p) {
    const std::size_t want = benign_share[p];
    if (want == 0) continue;
    const std::size_t length = required_length(want, spec.window_length, spec.stride);
    const auto trace = sandbox.benign_trace(benign[p], 0, length);
    auto windows = sliding_windows(trace, spec.window_length, spec.stride);
    windows.resize(want);
    for (auto& w : windows) {
      built.data.sequences.push_back(std::move(w));
      built.data.labels.push_back(0);
    }
  }

  // "The final benign and ransomware API call sequences were then merged
  // and shuffled."
  Rng shuffle_rng = Rng(spec.seed).fork("dataset-shuffle");
  built.data.shuffle(shuffle_rng);
  return built;
}

}  // namespace csdml::ransomware
