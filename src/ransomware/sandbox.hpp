// Cuckoo-style sandbox trace generation.
//
// The paper executed each variant in Cuckoo Sandbox on Windows 10/11 and
// recorded all API calls "in the order in which they would be observed on
// a system housing a CSD". This generator plays a profile's phase script,
// emitting motif instances with:
//   * per-variant determinism — (seed, family, variant) fixes the trace,
//   * variant mutation — each variant perturbs repeat counts and the
//     equivalent-API choices inside motifs,
//   * OS background noise — scheduler/heap/message-pump calls interleaved
//     between motif tokens, as a real trace would show,
//   * a minimum length, extending the dominant phase until reached.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "nn/dataset.hpp"
#include "ransomware/families.hpp"

namespace csdml::ransomware {

struct SandboxConfig {
  std::uint64_t seed{2024};
  double background_noise_rate{0.18};  ///< P(noise token after each call)
  std::size_t min_trace_length{400};
};

/// Completed file encryptions in a trace (or trace prefix): a file counts
/// when a rename/replace call lands after a pending CryptEncrypt /
/// BCryptEncrypt — the EncryptionLoop motif's per-file tail, where the
/// ciphertext displaces the original. The scenario scorer feeds the attack
/// trace up to the first alert through this to measure files lost before
/// the verdict.
std::size_t count_files_encrypted(nn::TokenSpan trace);

class SandboxTraceGenerator {
 public:
  explicit SandboxTraceGenerator(SandboxConfig config);

  /// Full API-call trace for one numbered variant of a family.
  std::vector<nn::TokenId> ransomware_trace(const FamilyProfile& family,
                                            std::uint32_t variant,
                                            std::size_t min_length) const;

  /// Full trace for a benign profile execution (session id distinguishes
  /// repeated executions of the same app).
  std::vector<nn::TokenId> benign_trace(const BenignProfile& profile,
                                        std::uint32_t session,
                                        std::size_t min_length) const;

  const SandboxConfig& config() const { return config_; }

 private:
  std::vector<nn::TokenId> run_script(const std::vector<Phase>& script,
                                      Rng& rng, std::size_t min_length,
                                      MotifKind filler) const;
  void maybe_noise(Rng& rng, std::vector<nn::TokenId>& out) const;

  SandboxConfig config_;
  std::vector<nn::TokenId> noise_tokens_;
};

}  // namespace csdml::ransomware
