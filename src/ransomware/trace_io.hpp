// Sandbox trace interchange (JSON Lines).
//
// Cuckoo emits JSON reports; analysts exchange API-call traces as JSON.
// This module defines the repo's interchange record — one sample per line,
//
//   {"sample":"Lockbit/variant-3","label":1,"calls":["NtOpenFile", ...]}
//
// — with calls stored by *name* (readable, vocabulary-independent) and a
// strict parser that rejects unknown calls rather than guessing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/dataset.hpp"

namespace csdml::ransomware {

struct TraceRecord {
  std::string sample;            ///< e.g. "Ryuk/variant-2" or "7-Zip/session-0"
  int label{0};                  ///< 1 = ransomware
  std::vector<nn::TokenId> calls;
};

/// Writes one record per line.
void write_traces_jsonl(std::ostream& out, const std::vector<TraceRecord>& records);
void write_traces_jsonl_file(const std::string& path,
                             const std::vector<TraceRecord>& records);

/// Parses records; throws ParseError on malformed JSON, unknown API names,
/// or non-binary labels. Blank lines are skipped.
std::vector<TraceRecord> read_traces_jsonl(std::istream& in);
std::vector<TraceRecord> read_traces_jsonl_file(const std::string& path);

/// Convenience: full-corpus export — every family variant and benign
/// profile detonated once at `min_trace_length`.
std::vector<TraceRecord> export_corpus_traces(std::uint64_t seed,
                                              std::size_t min_trace_length);

}  // namespace csdml::ransomware
