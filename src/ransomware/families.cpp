#include "ransomware/families.hpp"

namespace csdml::ransomware {

namespace {

using MK = MotifKind;

/// Shared tail of every encrypting family: discovery + encryption sweeps.
/// `sweeps` controls how dominant the encryption phase is in the trace.
void append_encryption_sweeps(std::vector<Phase>& script, std::uint32_t sweeps) {
  script.push_back({MK::FileDiscovery, 1, 2});
  script.push_back({MK::EncryptionLoop, sweeps, sweeps + 10});
}

std::vector<FamilyProfile> build_families() {
  std::vector<FamilyProfile> families;

  {  // Ryuk: targeted, service-killing, propagates over SMB, no C2 chatter.
    FamilyProfile f{.name = "Ryuk", .variants = 5, .encrypts = true,
                    .self_propagates = true, .script = {}};
    f.script = {{MK::DropperStartup, 1, 1}, {MK::AntiAnalysis, 1, 2},
                {MK::Recon, 1, 1},          {MK::ServiceTampering, 2, 4},
                {MK::ShadowCopyWipe, 1, 2}, {MK::KeyGeneration, 1, 1}};
    append_encryption_sweeps(f.script, 18);
    f.script.push_back({MK::SmbPropagation, 1, 3});
    f.script.push_back({MK::RansomNote, 1, 1});
    families.push_back(std::move(f));
  }
  {  // Lockbit: fast, heavily threaded encryption, wormable.
    FamilyProfile f{.name = "Lockbit", .variants = 6, .encrypts = true,
                    .self_propagates = true, .script = {}};
    f.script = {{MK::DropperStartup, 1, 1}, {MK::AntiAnalysis, 1, 1},
                {MK::Recon, 1, 1},          {MK::KeyGeneration, 1, 1},
                {MK::ShadowCopyWipe, 1, 1}};
    append_encryption_sweeps(f.script, 24);
    f.script.push_back({MK::SmbPropagation, 2, 4});
    f.script.push_back({MK::RegistryPersistence, 1, 1});
    f.script.push_back({MK::RansomNote, 1, 1});
    families.push_back(std::move(f));
  }
  {  // Teslacrypt: game-file focused, C2-chatty, persistent.
    FamilyProfile f{.name = "Teslacrypt", .variants = 10, .encrypts = true,
                    .self_propagates = false, .script = {}};
    f.script = {{MK::DropperStartup, 1, 1}, {MK::Recon, 1, 1},
                {MK::C2Beacon, 1, 2},       {MK::KeyGeneration, 1, 1},
                {MK::RegistryPersistence, 1, 2}};
    append_encryption_sweeps(f.script, 14);
    f.script.push_back({MK::C2Beacon, 1, 2});
    f.script.push_back({MK::RansomNote, 1, 1});
    families.push_back(std::move(f));
  }
  {  // Virlock: polymorphic file infector / locker hybrid, GUI heavy.
    FamilyProfile f{.name = "Virlock", .variants = 11, .encrypts = true,
                    .self_propagates = false, .script = {}};
    f.script = {{MK::DropperStartup, 1, 2}, {MK::AntiAnalysis, 1, 2},
                {MK::RegistryPersistence, 2, 3}, {MK::KeyGeneration, 1, 1}};
    append_encryption_sweeps(f.script, 12);
    f.script.push_back({MK::RansomNote, 1, 2});
    f.script.push_back({MK::SelfDelete, 0, 1});
    families.push_back(std::move(f));
  }
  {  // Cryptowall: staged payload, strong C2, shadow wipe.
    FamilyProfile f{.name = "Cryptowall", .variants = 8, .encrypts = true,
                    .self_propagates = false, .script = {}};
    f.script = {{MK::DropperStartup, 1, 1}, {MK::AntiAnalysis, 1, 1},
                {MK::C2Beacon, 2, 3},       {MK::KeyGeneration, 1, 1},
                {MK::ShadowCopyWipe, 1, 1}};
    append_encryption_sweeps(f.script, 16);
    f.script.push_back({MK::C2Beacon, 1, 2});
    f.script.push_back({MK::RansomNote, 1, 1});
    f.script.push_back({MK::SelfDelete, 0, 1});
    families.push_back(std::move(f));
  }
  {  // Cerber: offline-capable, config from registry, RaaS.
    FamilyProfile f{.name = "Cerber", .variants = 9, .encrypts = true,
                    .self_propagates = false, .script = {}};
    f.script = {{MK::DropperStartup, 1, 1}, {MK::Recon, 1, 2},
                {MK::RegistryPersistence, 1, 2}, {MK::KeyGeneration, 1, 1},
                {MK::ShadowCopyWipe, 1, 1}};
    append_encryption_sweeps(f.script, 16);
    f.script.push_back({MK::RansomNote, 1, 1});
    families.push_back(std::move(f));
  }
  {  // Wannacry: the EternalBlue worm — heavy propagation around encryption.
    FamilyProfile f{.name = "Wannacry", .variants = 7, .encrypts = true,
                    .self_propagates = true, .script = {}};
    f.script = {{MK::DropperStartup, 1, 1}, {MK::C2Beacon, 1, 1},
                {MK::SmbPropagation, 2, 4}, {MK::KeyGeneration, 1, 1},
                {MK::ShadowCopyWipe, 1, 1}};
    append_encryption_sweeps(f.script, 14);
    f.script.push_back({MK::SmbPropagation, 2, 4});
    f.script.push_back({MK::RansomNote, 1, 1});
    families.push_back(std::move(f));
  }
  {  // Locky: macro-dropper origin, C2 key exchange.
    FamilyProfile f{.name = "Locky", .variants = 6, .encrypts = true,
                    .self_propagates = false, .script = {}};
    f.script = {{MK::DropperStartup, 1, 1}, {MK::C2Beacon, 1, 2},
                {MK::KeyGeneration, 1, 1},  {MK::ShadowCopyWipe, 1, 1}};
    append_encryption_sweeps(f.script, 15);
    f.script.push_back({MK::RansomNote, 1, 1});
    f.script.push_back({MK::SelfDelete, 0, 1});
    families.push_back(std::move(f));
  }
  {  // Chimera: threatened data publication; network-share aware.
    FamilyProfile f{.name = "Chimera", .variants = 9, .encrypts = true,
                    .self_propagates = false, .script = {}};
    f.script = {{MK::DropperStartup, 1, 1}, {MK::Recon, 1, 1},
                {MK::C2Beacon, 1, 1},       {MK::KeyGeneration, 1, 1}};
    append_encryption_sweeps(f.script, 14);
    f.script.push_back({MK::C2Beacon, 1, 1});
    f.script.push_back({MK::RansomNote, 1, 1});
    families.push_back(std::move(f));
  }
  {  // BadRabbit: drive-by dropper, SMB spread, service tampering, bootlocker-ish.
    FamilyProfile f{.name = "BadRabbit", .variants = 5, .encrypts = true,
                    .self_propagates = true, .script = {}};
    f.script = {{MK::DropperStartup, 1, 1}, {MK::AntiAnalysis, 1, 1},
                {MK::ServiceTampering, 1, 2}, {MK::KeyGeneration, 1, 1}};
    append_encryption_sweeps(f.script, 14);
    f.script.push_back({MK::SmbPropagation, 1, 3});
    f.script.push_back({MK::RegistryPersistence, 1, 1});
    f.script.push_back({MK::RansomNote, 1, 1});
    families.push_back(std::move(f));
  }
  // Droppers masquerade as ordinary applications at launch, so every
  // family's trace opens with a benign-looking startup phase — this is
  // what makes the earliest sliding windows genuinely hard to label.
  for (auto& family : families) {
    const std::vector<Phase> masquerade = {{MK::AppStartup, 1, 1},
                                           {MK::ConfigLoad, 1, 2},
                                           {MK::UiIdle, 1, 3},
                                           {MK::FileBrowse, 1, 2}};
    family.script.insert(family.script.begin(), masquerade.begin(),
                         masquerade.end());
  }
  return families;
}

std::vector<BenignProfile> build_benign() {
  std::vector<BenignProfile> profiles;

  struct AppSeed {
    const char* name;
    std::vector<Phase> script;
  };

  // 30 popular portable applications (archivers, editors, players,
  // browsers, utilities — the Portable Freeware Collection's perennials).
  const std::vector<AppSeed> apps = {
      {"7-Zip", {{MK::AppStartup, 1, 1}, {MK::FileBrowse, 1, 2},
                 {MK::ArchiveLoop, 6, 14}, {MK::InstallerChecksum, 0, 1},
                 {MK::UiIdle, 2, 4}}},
      {"Notepad++", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 2},
                     {MK::DocumentOpen, 2, 6}, {MK::UiIdle, 3, 6},
                     {MK::DocumentSave, 1, 4}, {MK::ClipboardLikeUse, 1, 3}}},
      {"VLC", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 1},
               {MK::MediaPlayback, 4, 10}, {MK::UiIdle, 2, 5}}},
      {"SumatraPDF", {{MK::AppStartup, 1, 1}, {MK::DocumentOpen, 2, 5},
                      {MK::UiIdle, 3, 8}, {MK::ConfigLoad, 1, 1}}},
      {"KeePass", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 1},
                   {MK::InstallerChecksum, 1, 2}, {MK::DocumentOpen, 1, 2},
                   {MK::ClipboardLikeUse, 2, 5}, {MK::DocumentSave, 1, 2},
                   {MK::UiIdle, 2, 4}}},
      {"FirefoxPortable", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 2},
                           {MK::WebRequest, 4, 10}, {MK::UiIdle, 3, 6},
                           {MK::DocumentSave, 0, 2}, {MK::BackgroundSync, 1, 3}}},
      {"ChromePortable", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 2},
                          {MK::WebRequest, 4, 10}, {MK::UiIdle, 3, 6},
                          {MK::BackgroundSync, 1, 3}}},
      {"IrfanView", {{MK::AppStartup, 1, 1}, {MK::FileBrowse, 1, 3},
                     {MK::DocumentOpen, 3, 8}, {MK::DocumentSave, 1, 3},
                     {MK::UiIdle, 2, 4}}},
      {"Everything", {{MK::AppStartup, 1, 1}, {MK::FileBrowse, 4, 10},
                      {MK::UiIdle, 2, 5}, {MK::ConfigLoad, 1, 1}}},
      {"Audacity", {{MK::AppStartup, 1, 1}, {MK::DocumentOpen, 1, 3},
                    {MK::MediaPlayback, 3, 8}, {MK::DocumentSave, 1, 2},
                    {MK::UiIdle, 2, 5}}},
      {"GIMPPortable", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 2},
                        {MK::DocumentOpen, 1, 3}, {MK::UiIdle, 4, 8},
                        {MK::DocumentSave, 1, 3}}},
      {"LibreOfficePortable", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 2},
                               {MK::DocumentOpen, 1, 4}, {MK::UiIdle, 4, 8},
                               {MK::DocumentSave, 2, 5},
                               {MK::ClipboardLikeUse, 1, 3}}},
      {"FileZilla", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 1},
                     {MK::BackgroundSync, 3, 8}, {MK::DocumentSave, 1, 4},
                     {MK::UiIdle, 2, 4}}},
      {"PuTTY", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 1},
                 {MK::BackgroundSync, 3, 8}, {MK::UiIdle, 2, 5}}},
      {"WinDirStat", {{MK::AppStartup, 1, 1}, {MK::FileBrowse, 5, 12},
                      {MK::UiIdle, 2, 4}}},
      {"CPU-Z", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 1},
                 {MK::UiIdle, 3, 6}}},
      {"Rufus", {{MK::AppStartup, 1, 1}, {MK::FileBrowse, 1, 2},
                 {MK::ArchiveLoop, 3, 8}, {MK::InstallerChecksum, 1, 2},
                 {MK::UiIdle, 1, 3}}},
      {"PaintDotNetPortable", {{MK::AppStartup, 1, 1}, {MK::DocumentOpen, 1, 3},
                               {MK::UiIdle, 4, 8}, {MK::DocumentSave, 1, 3}}},
      {"qBittorrent", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 1},
                       {MK::WebRequest, 2, 5}, {MK::BackgroundSync, 4, 10},
                       {MK::DocumentSave, 2, 6}, {MK::UiIdle, 1, 3}}},
      {"Thunderbird", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 2},
                       {MK::WebRequest, 2, 6}, {MK::BackgroundSync, 2, 6},
                       {MK::DocumentOpen, 1, 3}, {MK::UiIdle, 2, 5}}},
      {"FoxitReader", {{MK::AppStartup, 1, 1}, {MK::DocumentOpen, 2, 5},
                       {MK::UiIdle, 3, 7}, {MK::ConfigLoad, 1, 1}}},
      {"VeraCryptPortable", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 1},
                             {MK::KeyGeneration, 1, 1},
                             {MK::VolumeEncryptionLoop, 5, 12},
                             {MK::UiIdle, 2, 4}}},
      {"Recuva", {{MK::AppStartup, 1, 1}, {MK::FileBrowse, 3, 8},
                  {MK::DocumentSave, 1, 4}, {MK::UiIdle, 1, 3}}},
      {"TeamViewerPortable", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 1},
                              {MK::WebRequest, 2, 4}, {MK::BackgroundSync, 3, 8},
                              {MK::UiIdle, 2, 4}}},
      {"OBSPortable", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 2},
                       {MK::MediaPlayback, 4, 9}, {MK::DocumentSave, 2, 5},
                       {MK::UiIdle, 1, 3}}},
      {"Inkscape", {{MK::AppStartup, 1, 1}, {MK::DocumentOpen, 1, 3},
                    {MK::UiIdle, 4, 8}, {MK::DocumentSave, 1, 3},
                    {MK::ClipboardLikeUse, 1, 2}}},
      {"Blender", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 2},
                   {MK::DocumentOpen, 1, 2}, {MK::UiIdle, 5, 10},
                   {MK::DocumentSave, 1, 3}}},
      {"CalibrePortable", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 1},
                           {MK::FileBrowse, 2, 5}, {MK::DocumentOpen, 2, 5},
                           {MK::BackgroundSync, 1, 3}, {MK::UiIdle, 2, 4}}},
      {"ShareX", {{MK::AppStartup, 1, 1}, {MK::ClipboardLikeUse, 2, 5},
                  {MK::DocumentSave, 2, 5}, {MK::WebRequest, 1, 3},
                  {MK::UiIdle, 2, 4}}},
      {"MusicBee", {{MK::AppStartup, 1, 1}, {MK::ConfigLoad, 1, 2},
                    {MK::FileBrowse, 1, 3}, {MK::MediaPlayback, 4, 10},
                    {MK::UiIdle, 2, 4}}},
  };
  for (const AppSeed& app : apps) {
    profiles.push_back(BenignProfile{app.name, false, app.script});
  }

  // Manual interaction sessions (the paper's second benign source).
  const std::vector<AppSeed> manual = {
      {"manual-desktop-1", {{MK::UiIdle, 6, 12}, {MK::FileBrowse, 2, 5},
                            {MK::DocumentOpen, 1, 4}, {MK::ClipboardLikeUse, 2, 5},
                            {MK::DocumentSave, 1, 3}, {MK::UiIdle, 3, 6}}},
      {"manual-desktop-2", {{MK::UiIdle, 4, 8}, {MK::WebRequest, 3, 7},
                            {MK::DocumentSave, 1, 2}, {MK::FileBrowse, 1, 4},
                            {MK::UiIdle, 3, 6}}},
      {"manual-desktop-3", {{MK::ConfigLoad, 1, 2}, {MK::UiIdle, 5, 10},
                            {MK::SoftwareUpdate, 1, 2}, {MK::FileBrowse, 1, 3},
                            {MK::UiIdle, 2, 5}}},
      {"manual-desktop-4", {{MK::UiIdle, 4, 9}, {MK::DocumentOpen, 2, 5},
                            {MK::ClipboardLikeUse, 1, 4}, {MK::DocumentSave, 2, 4},
                            {MK::BackgroundSync, 1, 2}, {MK::UiIdle, 2, 4}}},
      {"manual-desktop-5", {{MK::UiIdle, 5, 10}, {MK::FileBrowse, 3, 6},
                            {MK::MediaPlayback, 1, 4}, {MK::UiIdle, 3, 6}}},
      {"manual-desktop-6", {{MK::UiIdle, 4, 8}, {MK::WebRequest, 2, 5},
                            {MK::SoftwareUpdate, 0, 1}, {MK::DocumentOpen, 1, 3},
                            {MK::UiIdle, 3, 7}}},
  };
  for (const AppSeed& session : manual) {
    profiles.push_back(BenignProfile{session.name, true, session.script});
  }
  return profiles;
}

}  // namespace

const std::vector<FamilyProfile>& ransomware_families() {
  static const std::vector<FamilyProfile> families = build_families();
  return families;
}

const std::vector<BenignProfile>& benign_profiles() {
  static const std::vector<BenignProfile> profiles = build_benign();
  return profiles;
}

std::uint32_t total_variant_count() {
  std::uint32_t total = 0;
  for (const auto& family : ransomware_families()) total += family.variants;
  return total;
}

}  // namespace csdml::ransomware
