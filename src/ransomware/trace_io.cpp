#include "ransomware/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "ransomware/api_vocab.hpp"
#include "ransomware/sandbox.hpp"

namespace csdml::ransomware {

namespace {

void write_json_string(std::ostream& out, std::string_view value) {
  out << '"';
  for (const char c : value) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

/// Minimal strict parser for the record grammar this module writes.
class JsonCursor {
 public:
  JsonCursor(const std::string& text, std::size_t line)
      : text_(text), line_(line) {}

  void expect(char c) {
    skip_space();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool try_consume(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    skip_space();
    if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          default: fail("unsupported escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  long parse_integer() {
    skip_space();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected integer");
    return std::stol(text_.substr(start, pos_ - start));
  }

  void finish() {
    skip_space();
    if (pos_ != text_.size()) fail("trailing content");
  }

  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("trace jsonl line " + std::to_string(line_) + ": " + what);
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_{0};
  std::size_t line_;
};

}  // namespace

void write_traces_jsonl(std::ostream& out, const std::vector<TraceRecord>& records) {
  const auto& vocab = ApiVocabulary::instance();
  for (const TraceRecord& record : records) {
    CSDML_REQUIRE(record.label == 0 || record.label == 1, "label must be binary");
    out << "{\"sample\":";
    write_json_string(out, record.sample);
    out << ",\"label\":" << record.label << ",\"calls\":[";
    for (std::size_t i = 0; i < record.calls.size(); ++i) {
      if (i) out << ',';
      write_json_string(out, vocab.call(record.calls[i]).name);
    }
    out << "]}\n";
  }
}

void write_traces_jsonl_file(const std::string& path,
                             const std::vector<TraceRecord>& records) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ParseError("cannot open for writing: " + path);
  write_traces_jsonl(out, records);
}

std::vector<TraceRecord> read_traces_jsonl(std::istream& in) {
  const auto& vocab = ApiVocabulary::instance();
  std::vector<TraceRecord> records;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    JsonCursor cursor(line, line_number);
    TraceRecord record;
    cursor.expect('{');
    bool first = true;
    while (true) {
      if (!first) {
        if (!cursor.try_consume(',')) break;
      }
      first = false;
      const std::string key = cursor.parse_string();
      cursor.expect(':');
      if (key == "sample") {
        record.sample = cursor.parse_string();
      } else if (key == "label") {
        const long label = cursor.parse_integer();
        if (label != 0 && label != 1) cursor.fail("label must be 0 or 1");
        record.label = static_cast<int>(label);
      } else if (key == "calls") {
        cursor.expect('[');
        if (!cursor.try_consume(']')) {
          do {
            const std::string name = cursor.parse_string();
            const auto token = vocab.token_of(name);
            if (!token.has_value()) cursor.fail("unknown API call " + name);
            record.calls.push_back(*token);
          } while (cursor.try_consume(','));
          cursor.expect(']');
        }
      } else {
        cursor.fail("unknown key " + key);
      }
    }
    cursor.expect('}');
    cursor.finish();
    records.push_back(std::move(record));
  }
  return records;
}

std::vector<TraceRecord> read_traces_jsonl_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open trace file: " + path);
  return read_traces_jsonl(in);
}

std::vector<TraceRecord> export_corpus_traces(std::uint64_t seed,
                                              std::size_t min_trace_length) {
  SandboxConfig config;
  config.seed = seed;
  const SandboxTraceGenerator sandbox(config);
  std::vector<TraceRecord> records;
  for (const auto& family : ransomware_families()) {
    for (std::uint32_t v = 0; v < family.variants; ++v) {
      TraceRecord record;
      record.sample = family.name + "/variant-" + std::to_string(v);
      record.label = 1;
      record.calls = sandbox.ransomware_trace(family, v, min_trace_length);
      records.push_back(std::move(record));
    }
  }
  for (const auto& profile : benign_profiles()) {
    TraceRecord record;
    record.sample = profile.name + "/session-0";
    record.label = 0;
    record.calls = sandbox.benign_trace(profile, 0, min_trace_length);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace csdml::ransomware
