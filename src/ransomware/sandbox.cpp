#include "ransomware/sandbox.hpp"

#include "common/error.hpp"
#include "ransomware/api_vocab.hpp"

namespace csdml::ransomware {

std::size_t count_files_encrypted(nn::TokenSpan trace) {
  const auto& vocab = ApiVocabulary::instance();
  const nn::TokenId encrypt_a = vocab.require("CryptEncrypt");
  const nn::TokenId encrypt_b = vocab.require("BCryptEncrypt");
  const nn::TokenId rename_a = vocab.require("MoveFileExW");
  const nn::TokenId rename_b = vocab.require("MoveFileW");
  const nn::TokenId rename_c = vocab.require("ReplaceFileW");
  std::size_t files = 0;
  bool pending = false;
  for (const nn::TokenId token : trace) {
    if (token == encrypt_a || token == encrypt_b) {
      pending = true;
    } else if (pending &&
               (token == rename_a || token == rename_b || token == rename_c)) {
      ++files;
      pending = false;
    }
  }
  return files;
}

SandboxTraceGenerator::SandboxTraceGenerator(SandboxConfig config)
    : config_(config) {
  CSDML_REQUIRE(config_.background_noise_rate >= 0.0 &&
                    config_.background_noise_rate < 1.0,
                "noise rate must be in [0, 1)");
  const auto& vocab = ApiVocabulary::instance();
  // The calls any Windows process emits regardless of what it is doing.
  for (const char* name :
       {"HeapAlloc", "HeapFree", "GetLastError", "GetTickCount",
        "QueryPerformanceCounter", "EnterCriticalSection",
        "LeaveCriticalSection", "GetCurrentProcessId", "Sleep",
        "GetSystemTimeAsFileTime", "LocalAlloc", "VirtualQuery"}) {
    noise_tokens_.push_back(vocab.require(name));
  }
}

void SandboxTraceGenerator::maybe_noise(Rng& rng,
                                        std::vector<nn::TokenId>& out) const {
  while (rng.chance(config_.background_noise_rate)) {
    out.push_back(rng.pick(noise_tokens_));
  }
}

std::vector<nn::TokenId> SandboxTraceGenerator::run_script(
    const std::vector<Phase>& script, Rng& rng, std::size_t min_length,
    MotifKind filler) const {
  CSDML_REQUIRE(!script.empty(), "empty phase script");
  std::vector<nn::TokenId> trace;
  trace.reserve(min_length + 256);

  const auto emit_with_noise = [&](MotifKind motif) {
    std::vector<nn::TokenId> tokens;
    emit_motif(motif, rng, tokens);
    for (const nn::TokenId token : tokens) {
      trace.push_back(token);
      maybe_noise(rng, trace);
    }
  };

  for (const Phase& phase : script) {
    CSDML_REQUIRE(phase.min_repeats <= phase.max_repeats,
                  "phase repeat range inverted");
    const auto repeats = rng.uniform_int(phase.min_repeats, phase.max_repeats);
    for (std::int64_t r = 0; r < repeats; ++r) emit_with_noise(phase.motif);
  }
  // Extend the dominant phase until the trace covers the requested length
  // (a real sandbox run keeps encrypting / keeps pumping messages).
  while (trace.size() < min_length) emit_with_noise(filler);
  return trace;
}

std::vector<nn::TokenId> SandboxTraceGenerator::ransomware_trace(
    const FamilyProfile& family, std::uint32_t variant,
    std::size_t min_length) const {
  CSDML_REQUIRE(variant < family.variants, "variant index out of range");
  Rng rng = Rng(config_.seed)
                .fork("ransomware")
                .fork(family.name)
                .fork("variant-" + std::to_string(variant));
  return run_script(family.script, rng,
                    std::max(min_length, config_.min_trace_length),
                    MotifKind::EncryptionLoop);
}

std::vector<nn::TokenId> SandboxTraceGenerator::benign_trace(
    const BenignProfile& profile, std::uint32_t session,
    std::size_t min_length) const {
  Rng rng = Rng(config_.seed)
                .fork("benign")
                .fork(profile.name)
                .fork("session-" + std::to_string(session));
  const MotifKind filler =
      profile.manual_interaction ? MotifKind::UiIdle : MotifKind::DocumentOpen;
  return run_script(profile.script, rng,
                    std::max(min_length, config_.min_trace_length), filler);
}

}  // namespace csdml::ransomware
