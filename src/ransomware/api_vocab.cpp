#include "ransomware/api_vocab.hpp"

#include <array>
#include <unordered_map>

#include "common/error.hpp"

namespace csdml::ransomware {

const char* category_name(ApiCategory category) {
  switch (category) {
    case ApiCategory::FileSystem: return "filesystem";
    case ApiCategory::NtFile: return "ntfile";
    case ApiCategory::Registry: return "registry";
    case ApiCategory::Process: return "process";
    case ApiCategory::Thread: return "thread";
    case ApiCategory::Memory: return "memory";
    case ApiCategory::Library: return "library";
    case ApiCategory::Crypto: return "crypto";
    case ApiCategory::Network: return "network";
    case ApiCategory::Propagation: return "propagation";
    case ApiCategory::Service: return "service";
    case ApiCategory::Security: return "security";
    case ApiCategory::SystemInfo: return "systeminfo";
    case ApiCategory::Gui: return "gui";
    case ApiCategory::Sync: return "sync";
    case ApiCategory::Com: return "com";
    case ApiCategory::Misc: return "misc";
  }
  throw PreconditionError("unknown API category");
}

namespace {

using C = ApiCategory;

// 278 entries; a unit test pins the count and uniqueness.
constexpr std::array<ApiCall, 278> kCalls{{
    // --- FileSystem (38) ---
    {"CreateFileW", C::FileSystem}, {"CreateFileA", C::FileSystem},
    {"ReadFile", C::FileSystem},
    {"WriteFile", C::FileSystem}, {"WriteFileEx", C::FileSystem},
    {"CloseHandle", C::FileSystem}, {"DeleteFileW", C::FileSystem},
    {"DeleteFileA", C::FileSystem}, {"CopyFileW", C::FileSystem},
    {"MoveFileW", C::FileSystem}, {"MoveFileExW", C::FileSystem},
    {"ReplaceFileW", C::FileSystem}, {"GetFileSize", C::FileSystem},
    {"GetFileSizeEx", C::FileSystem}, {"SetFilePointer", C::FileSystem},
    {"SetFilePointerEx", C::FileSystem}, {"SetEndOfFile", C::FileSystem},
    {"FlushFileBuffers", C::FileSystem}, {"FindFirstFileW", C::FileSystem},
    {"FindFirstFileExW", C::FileSystem}, {"FindNextFileW", C::FileSystem},
    {"FindClose", C::FileSystem}, {"GetFileAttributesW", C::FileSystem},
    {"SetFileAttributesW", C::FileSystem},
    {"GetFileInformationByHandle", C::FileSystem}, {"GetFileType", C::FileSystem},
    {"CreateDirectoryW", C::FileSystem}, {"RemoveDirectoryW", C::FileSystem},
    {"GetTempPathW", C::FileSystem}, {"GetTempFileNameW", C::FileSystem},
    {"GetFullPathNameW", C::FileSystem}, {"GetLongPathNameW", C::FileSystem},
    {"SearchPathW", C::FileSystem}, {"LockFile", C::FileSystem},
    {"UnlockFile", C::FileSystem}, {"DeviceIoControl", C::FileSystem},
    {"GetDiskFreeSpaceExW", C::FileSystem}, {"GetDriveTypeW", C::FileSystem},
    // --- NtFile (10) ---
    {"NtCreateFile", C::NtFile}, {"NtOpenFile", C::NtFile},
    {"NtReadFile", C::NtFile}, {"NtWriteFile", C::NtFile},
    {"NtClose", C::NtFile}, {"NtQueryInformationFile", C::NtFile},
    {"NtSetInformationFile", C::NtFile}, {"NtQueryDirectoryFile", C::NtFile},
    {"NtDeleteFile", C::NtFile}, {"NtFlushBuffersFile", C::NtFile},
    // --- Registry (20) ---
    {"RegOpenKeyExW", C::Registry}, {"RegOpenKeyExA", C::Registry},
    {"RegCreateKeyExW", C::Registry}, {"RegCloseKey", C::Registry},
    {"RegQueryValueExW", C::Registry}, {"RegQueryValueExA", C::Registry},
    {"RegSetValueExW", C::Registry}, {"RegSetValueExA", C::Registry},
    {"RegDeleteValueW", C::Registry}, {"RegDeleteKeyW", C::Registry},
    {"RegEnumKeyExW", C::Registry}, {"RegEnumValueW", C::Registry},
    {"RegQueryInfoKeyW", C::Registry}, {"RegFlushKey", C::Registry},
    {"NtOpenKey", C::Registry}, {"NtCreateKey", C::Registry},
    {"NtQueryValueKey", C::Registry}, {"NtSetValueKey", C::Registry},
    {"NtDeleteKey", C::Registry}, {"NtEnumerateKey", C::Registry},
    // --- Process (24) ---
    {"CreateProcessW", C::Process}, {"CreateProcessA", C::Process},
    {"CreateProcessInternalW", C::Process}, {"OpenProcess", C::Process},
    {"TerminateProcess", C::Process}, {"ExitProcess", C::Process},
    {"GetCurrentProcess", C::Process}, {"GetCurrentProcessId", C::Process},
    {"GetExitCodeProcess", C::Process}, {"Process32FirstW", C::Process},
    {"Process32NextW", C::Process}, {"CreateToolhelp32Snapshot", C::Process},
    {"ShellExecuteW", C::Process}, {"ShellExecuteExW", C::Process},
    {"WinExec", C::Process}, {"NtCreateUserProcess", C::Process},
    {"NtOpenProcess", C::Process}, {"NtTerminateProcess", C::Process},
    {"NtQueryInformationProcess", C::Process}, {"NtSuspendProcess", C::Process},
    {"NtResumeProcess", C::Process}, {"EnumProcesses", C::Process},
    {"IsWow64Process", C::Process}, {"GetProcessHeap", C::Process},
    // --- Thread (14) ---
    {"CreateThread", C::Thread}, {"CreateRemoteThread", C::Thread},
    {"OpenThread", C::Thread}, {"SuspendThread", C::Thread},
    {"ResumeThread", C::Thread}, {"TerminateThread", C::Thread},
    {"GetThreadContext", C::Thread}, {"SetThreadContext", C::Thread},
    {"ExitThread", C::Thread}, {"Thread32First", C::Thread},
    {"Thread32Next", C::Thread}, {"NtCreateThreadEx", C::Thread},
    {"NtOpenThread", C::Thread}, {"QueueUserAPC", C::Thread},
    // --- Memory (18) ---
    {"VirtualAlloc", C::Memory}, {"VirtualAllocEx", C::Memory},
    {"VirtualFree", C::Memory}, {"VirtualProtect", C::Memory},
    {"VirtualProtectEx", C::Memory}, {"VirtualQuery", C::Memory},
    {"ReadProcessMemory", C::Memory}, {"WriteProcessMemory", C::Memory},
    {"HeapAlloc", C::Memory}, {"HeapFree", C::Memory},
    {"HeapCreate", C::Memory}, {"HeapReAlloc", C::Memory},
    {"GlobalAlloc", C::Memory}, {"GlobalFree", C::Memory},
    {"LocalAlloc", C::Memory}, {"MapViewOfFile", C::Memory},
    {"UnmapViewOfFile", C::Memory}, {"CreateFileMappingW", C::Memory},
    // --- Library (12) ---
    {"LoadLibraryW", C::Library}, {"LoadLibraryA", C::Library},
    {"LoadLibraryExW", C::Library}, {"GetProcAddress", C::Library},
    {"FreeLibrary", C::Library}, {"GetModuleHandleW", C::Library},
    {"GetModuleHandleA", C::Library}, {"GetModuleFileNameW", C::Library},
    {"LdrLoadDll", C::Library}, {"LdrGetProcedureAddress", C::Library},
    {"LdrUnloadDll", C::Library}, {"DisableThreadLibraryCalls", C::Library},
    // --- Crypto (20) ---
    {"CryptAcquireContextW", C::Crypto}, {"CryptReleaseContext", C::Crypto},
    {"CryptGenKey", C::Crypto}, {"CryptDeriveKey", C::Crypto},
    {"CryptDestroyKey", C::Crypto}, {"CryptEncrypt", C::Crypto},
    {"CryptDecrypt", C::Crypto}, {"CryptCreateHash", C::Crypto},
    {"CryptHashData", C::Crypto}, {"CryptGetHashParam", C::Crypto},
    {"CryptDestroyHash", C::Crypto}, {"CryptGenRandom", C::Crypto},
    {"CryptImportKey", C::Crypto}, {"CryptExportKey", C::Crypto},
    {"BCryptOpenAlgorithmProvider", C::Crypto},
    {"BCryptGenerateSymmetricKey", C::Crypto}, {"BCryptEncrypt", C::Crypto},
    {"BCryptDecrypt", C::Crypto}, {"BCryptCloseAlgorithmProvider", C::Crypto},
    {"BCryptGenRandom", C::Crypto},
    // --- Network (28) ---
    {"socket", C::Network}, {"connect", C::Network}, {"send", C::Network},
    {"recv", C::Network}, {"sendto", C::Network}, {"recvfrom", C::Network},
    {"closesocket", C::Network}, {"bind", C::Network}, {"listen", C::Network},
    {"accept", C::Network}, {"gethostbyname", C::Network},
    {"getaddrinfo", C::Network}, {"WSAStartup", C::Network},
    {"WSACleanup", C::Network}, {"WSASocketW", C::Network},
    {"WSASend", C::Network}, {"WSARecv", C::Network},
    {"InternetOpenW", C::Network}, {"InternetOpenUrlW", C::Network},
    {"InternetConnectW", C::Network}, {"InternetReadFile", C::Network},
    {"InternetCloseHandle", C::Network}, {"HttpOpenRequestW", C::Network},
    {"HttpSendRequestW", C::Network}, {"HttpQueryInfoW", C::Network},
    {"WinHttpOpen", C::Network}, {"WinHttpConnect", C::Network},
    {"WinHttpSendRequest", C::Network},
    // --- Propagation (8) ---
    {"NetShareEnum", C::Propagation}, {"NetServerEnum", C::Propagation},
    {"NetUseAdd", C::Propagation}, {"WNetOpenEnumW", C::Propagation},
    {"WNetEnumResourceW", C::Propagation}, {"WNetAddConnection2W", C::Propagation},
    {"URLDownloadToFileW", C::Propagation}, {"DnsQuery_W", C::Propagation},
    // --- Service (11) ---
    {"OpenSCManagerW", C::Service}, {"CreateServiceW", C::Service},
    {"OpenServiceW", C::Service}, {"StartServiceW", C::Service},
    {"ControlService", C::Service}, {"DeleteService", C::Service},
    {"CloseServiceHandle", C::Service}, {"QueryServiceStatusEx", C::Service},
    {"ChangeServiceConfigW", C::Service}, {"EnumServicesStatusExW", C::Service},
    {"StartServiceCtrlDispatcherW", C::Service},
    // --- Security (11) ---
    {"OpenProcessToken", C::Security}, {"OpenThreadToken", C::Security},
    {"AdjustTokenPrivileges", C::Security}, {"LookupPrivilegeValueW", C::Security},
    {"GetTokenInformation", C::Security}, {"DuplicateTokenEx", C::Security},
    {"ImpersonateLoggedOnUser", C::Security}, {"RevertToSelf", C::Security},
    {"SetSecurityDescriptorDacl", C::Security},
    {"InitializeSecurityDescriptor", C::Security}, {"GetUserNameW", C::Security},
    // --- SystemInfo (18) ---
    {"GetSystemInfo", C::SystemInfo}, {"GetNativeSystemInfo", C::SystemInfo},
    {"GetVersionExW", C::SystemInfo}, {"GetComputerNameW", C::SystemInfo},
    {"GetSystemTime", C::SystemInfo}, {"GetLocalTime", C::SystemInfo},
    {"GetTickCount", C::SystemInfo}, {"GetTickCount64", C::SystemInfo},
    {"QueryPerformanceCounter", C::SystemInfo},
    {"QueryPerformanceFrequency", C::SystemInfo},
    {"GetSystemTimeAsFileTime", C::SystemInfo},
    {"GlobalMemoryStatusEx", C::SystemInfo}, {"GetLogicalDrives", C::SystemInfo},
    {"GetVolumeInformationW", C::SystemInfo},
    {"GetWindowsDirectoryW", C::SystemInfo}, {"GetSystemDirectoryW", C::SystemInfo},
    {"GetEnvironmentVariableW", C::SystemInfo}, {"GetCommandLineW", C::SystemInfo},
    // --- Gui (20) ---
    {"CreateWindowExW", C::Gui}, {"DestroyWindow", C::Gui},
    {"ShowWindow", C::Gui}, {"UpdateWindow", C::Gui}, {"FindWindowW", C::Gui},
    {"FindWindowExW", C::Gui}, {"GetForegroundWindow", C::Gui},
    {"SetForegroundWindow", C::Gui}, {"GetMessageW", C::Gui},
    {"PeekMessageW", C::Gui}, {"DispatchMessageW", C::Gui},
    {"TranslateMessage", C::Gui}, {"PostMessageW", C::Gui},
    {"SendMessageW", C::Gui}, {"MessageBoxW", C::Gui},
    {"SetWindowTextW", C::Gui}, {"GetWindowTextW", C::Gui},
    {"EnumWindows", C::Gui}, {"GetCursorPos", C::Gui}, {"SetTimer", C::Gui},
    // --- Sync (11) ---
    {"CreateMutexW", C::Sync}, {"OpenMutexW", C::Sync},
    {"ReleaseMutex", C::Sync}, {"CreateEventW", C::Sync}, {"SetEvent", C::Sync},
    {"ResetEvent", C::Sync}, {"WaitForSingleObject", C::Sync},
    {"WaitForMultipleObjects", C::Sync}, {"EnterCriticalSection", C::Sync},
    {"LeaveCriticalSection", C::Sync}, {"InitializeCriticalSection", C::Sync},
    // --- Com (12) ---
    {"CoInitialize", C::Com}, {"CoInitializeEx", C::Com},
    {"CoUninitialize", C::Com}, {"CoCreateInstance", C::Com},
    {"CoTaskMemAlloc", C::Com}, {"CoTaskMemFree", C::Com},
    {"SHGetFolderPathW", C::Com}, {"SHGetKnownFolderPath", C::Com},
    {"SHCreateDirectoryExW", C::Com}, {"SHFileOperationW", C::Com},
    {"SHGetSpecialFolderPathW", C::Com}, {"Shell_NotifyIconW", C::Com},
    // --- Misc (3) ---
    {"Sleep", C::Misc}, {"IsDebuggerPresent", C::Misc},
    {"GetLastError", C::Misc},
}};

}  // namespace

ApiVocabulary::ApiVocabulary()
    : calls_(kCalls.begin(), kCalls.end()),
      by_category_(static_cast<std::size_t>(C::Misc) + 1) {
  for (std::size_t i = 0; i < calls_.size(); ++i) {
    by_category_[static_cast<std::size_t>(calls_[i].category)].push_back(
        static_cast<nn::TokenId>(i));
  }
}

const ApiVocabulary& ApiVocabulary::instance() {
  static const ApiVocabulary vocab;
  return vocab;
}

const ApiCall& ApiVocabulary::call(nn::TokenId token) const {
  CSDML_REQUIRE(token >= 0 && static_cast<std::size_t>(token) < calls_.size(),
                "token out of range");
  return calls_[static_cast<std::size_t>(token)];
}

std::optional<nn::TokenId> ApiVocabulary::token_of(std::string_view name) const {
  static const std::unordered_map<std::string_view, nn::TokenId> index = [] {
    std::unordered_map<std::string_view, nn::TokenId> map;
    const auto& vocab = ApiVocabulary::instance();
    for (std::size_t i = 0; i < vocab.size(); ++i) {
      map.emplace(vocab.call(static_cast<nn::TokenId>(i)).name,
                  static_cast<nn::TokenId>(i));
    }
    return map;
  }();
  const auto it = index.find(name);
  if (it == index.end()) return std::nullopt;
  return it->second;
}

nn::TokenId ApiVocabulary::require(std::string_view name) const {
  const auto token = token_of(name);
  CSDML_REQUIRE(token.has_value(), "unknown API call: " + std::string(name));
  return *token;
}

const std::vector<nn::TokenId>& ApiVocabulary::category_tokens(
    ApiCategory category) const {
  return by_category_[static_cast<std::size_t>(category)];
}

}  // namespace csdml::ransomware
