// The Windows API-call vocabulary observed by the Cuckoo-style sandbox.
//
// Exactly 278 calls: with the paper's embedding dimension of 8 this yields
// the 2,224 embedding parameters the paper reports (278 x 8 = 2,224), so
// the reproduced model is parameter-for-parameter the paper's model.
// Calls are grouped into behavioural categories that the trace motifs
// draw from.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "nn/dataset.hpp"

namespace csdml::ransomware {

enum class ApiCategory : std::uint8_t {
  FileSystem,
  NtFile,
  Registry,
  Process,
  Thread,
  Memory,
  Library,
  Crypto,
  Network,
  Propagation,
  Service,
  Security,
  SystemInfo,
  Gui,
  Sync,
  Com,
  Misc,
};

const char* category_name(ApiCategory category);

struct ApiCall {
  std::string_view name;
  ApiCategory category;
};

/// The full, ordered vocabulary. A call's index is its TokenId.
class ApiVocabulary {
 public:
  /// The singleton built-in vocabulary (278 calls).
  static const ApiVocabulary& instance();

  std::size_t size() const { return calls_.size(); }
  const ApiCall& call(nn::TokenId token) const;

  /// Token for an exact API name; nullopt when unknown.
  std::optional<nn::TokenId> token_of(std::string_view name) const;
  /// Token for a name that must exist (throws PreconditionError otherwise).
  nn::TokenId require(std::string_view name) const;

  /// All tokens in one category, in vocabulary order.
  const std::vector<nn::TokenId>& category_tokens(ApiCategory category) const;

 private:
  ApiVocabulary();
  std::vector<ApiCall> calls_;
  std::vector<std::vector<nn::TokenId>> by_category_;
};

}  // namespace csdml::ransomware
