// Structural description of an HLS kernel: loop nests with pragma sets,
// buffer bindings, and AXI traffic. The cost model (cost_model.hpp) turns
// one of these into cycle counts the way Vitis hardware emulation turns
// C++ + pragmas into a latency report.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "hls/op_latency.hpp"

namespace csdml::hls {

/// The pragmas the paper applies (Section III-D).
struct PragmaSet {
  bool pipeline{false};                ///< #pragma HLS PIPELINE II=target_ii
  int target_ii{1};
  int unroll{1};                       ///< #pragma HLS UNROLL factor=
  bool array_partition_complete{false};///< #pragma HLS ARRAY_PARTITION complete
};

/// Where the dominant buffer of a loop lives.
enum class BufferBinding {
  Registers,  ///< fully partitioned into FFs — unlimited parallel access
  Bram,       ///< on-chip block RAM
  DdrAxi,     ///< global memory behind an AXI master
};

struct LoopOp {
  OpKind kind;
  std::uint32_t count{1};  ///< occurrences per loop iteration
};

struct LoopSpec {
  std::string name;
  std::uint64_t trip_count{1};
  std::vector<LoopOp> body_ops;            ///< ops per iteration
  std::uint32_t buffer_accesses{0};        ///< loads+stores per iteration to `binding`
  BufferBinding binding{BufferBinding::Bram};
  std::uint32_t memory_ports{2};           ///< ports of the bound memory (BRAM = 2)
  /// Loop-carried dependency through this op (e.g. a float accumulator);
  /// bounds the achievable II at that op's latency.
  std::optional<OpKind> carried_dependency;
  PragmaSet pragmas;
};

/// A one-shot AXI master transfer performed by the kernel per invocation.
struct AxiTransferSpec {
  std::string name;
  Bytes bytes;
  /// Concurrent AXI masters contending for the same DDR bank during this
  /// transfer (1 = exclusive). Set by the engine from CU/bank topology.
  double contention{1.0};
};

/// An on-chip buffer declared by the kernel (weights, state, scratch).
struct LocalBufferSpec {
  std::string name;
  Bytes size;
  BufferBinding binding{BufferBinding::Bram};
};

struct KernelSpec {
  std::string name;
  std::vector<LoopSpec> loops;
  std::vector<AxiTransferSpec> transfers;
  std::vector<LocalBufferSpec> buffers;
  /// #pragma HLS DATAFLOW: loops overlap, kernel latency = max stage, not sum.
  bool dataflow{false};
};

}  // namespace csdml::hls
