#include "hls/resources.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace csdml::hls {

FpgaPart FpgaPart::ku15p() {
  // Kintex UltraScale+ KU15P datasheet-scale figures.
  return FpgaPart{.name = "xcku15p",
                  .luts = 522'720,
                  .flip_flops = 1'045'440,
                  .bram36 = 984,
                  .dsp = 1'968,
                  .ddr_banks = 1};
}

FpgaPart FpgaPart::alveo_u200() {
  // VU9P on the Alveo U200 shell; 4 DDR4 banks (paper uses 2).
  return FpgaPart{.name = "alveo-u200",
                  .luts = 1'182'240,
                  .flip_flops = 2'364'480,
                  .bram36 = 2'160,
                  .dsp = 6'840,
                  .ddr_banks = 4};
}

ResourceEstimate& ResourceEstimate::operator+=(const ResourceEstimate& other) {
  luts += other.luts;
  flip_flops += other.flip_flops;
  bram36 += other.bram36;
  dsp += other.dsp;
  return *this;
}

ResourceEstimate operator*(ResourceEstimate est, std::uint64_t copies) {
  est.luts *= copies;
  est.flip_flops *= copies;
  est.bram36 *= copies;
  est.dsp *= copies;
  return est;
}

bool ResourceEstimate::fits(const FpgaPart& part) const {
  return luts <= part.luts && flip_flops <= part.flip_flops &&
         bram36 <= part.bram36 && dsp <= part.dsp;
}

double ResourceEstimate::utilization(const FpgaPart& part) const {
  CSDML_REQUIRE(part.luts > 0 && part.bram36 > 0 && part.dsp > 0 &&
                    part.flip_flops > 0,
                "part with zero resources");
  double worst = static_cast<double>(luts) / static_cast<double>(part.luts);
  worst = std::max(worst,
                   static_cast<double>(flip_flops) / static_cast<double>(part.flip_flops));
  worst = std::max(worst, static_cast<double>(bram36) / static_cast<double>(part.bram36));
  worst = std::max(worst, static_cast<double>(dsp) / static_cast<double>(part.dsp));
  return worst;
}

namespace {

/// Rough LUT cost per occurrence of an op that doesn't map to DSP.
std::uint64_t lut_cost(OpKind kind) {
  switch (kind) {
    case OpKind::IntAdd: return 32;
    case OpKind::IntCmp: return 16;
    case OpKind::Shift: return 8;
    case OpKind::Select: return 16;
    case OpKind::IntDiv: return 900;   // sequential divider core
    case OpKind::FloatDiv: return 800;
    case OpKind::FloatExp: return 1'200;
    case OpKind::IntMul: return 40;    // glue around the DSP
    case OpKind::FloatAdd: return 200;
    case OpKind::FloatMul: return 100;
    case OpKind::kCount: break;
  }
  return 16;
}

std::uint64_t dsp_cost(OpKind kind) {
  switch (kind) {
    case OpKind::IntMul: return 2;    // 64x64 product splits across DSPs
    case OpKind::FloatMul: return 3;
    case OpKind::FloatAdd: return 2;
    default: return 0;
  }
}

}  // namespace

ResourceEstimate estimate_resources(const KernelSpec& kernel) {
  ResourceEstimate est;
  // Fixed kernel shell: AXI adapters, control FSM.
  est.luts = 4'000;
  est.flip_flops = 6'000;
  est.bram36 = 2;

  for (const LoopSpec& loop : kernel.loops) {
    const auto unroll = static_cast<std::uint64_t>(loop.pragmas.unroll);
    for (const LoopOp& op : loop.body_ops) {
      const std::uint64_t instances =
          loop.pragmas.pipeline || unroll > 1
              ? static_cast<std::uint64_t>(op.count) * unroll
              : op.count;  // sequential loops share one operator instance
      est.luts += lut_cost(op.kind) * instances;
      est.dsp += dsp_cost(op.kind) * instances;
      est.flip_flops += 64 * instances;  // pipeline registers
    }
  }

  for (const LocalBufferSpec& buffer : kernel.buffers) {
    switch (buffer.binding) {
      case BufferBinding::Bram:
        // One BRAM36 holds 4.5 KiB.
        est.bram36 += (buffer.size.count + 4607) / 4608;
        break;
      case BufferBinding::Registers:
        est.flip_flops += buffer.size.count * 8;
        est.luts += buffer.size.count * 2;  // read muxing
        break;
      case BufferBinding::DdrAxi:
        break;  // off-chip
    }
  }
  return est;
}

}  // namespace csdml::hls
