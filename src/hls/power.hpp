// FPGA power estimation from placed resources.
//
// The paper's motivation leans on CSDs' "lower-power processing
// capability ... compared to high-performance CPUs and GPUs"; this model
// quantifies it: static shell power plus per-resource dynamic power at the
// kernel clock, in the ranges Xilinx Power Estimator reports for
// UltraScale+ designs around 300 MHz. Energy per inference is then
// power x modelled latency, comparable against the host baselines'
// package/board power.
#pragma once

#include "common/units.hpp"
#include "hls/resources.hpp"

namespace csdml::hls {

struct PowerModel {
  double static_watts{2.5};        ///< shell, transceivers, PCIe hard IP
  double dsp_milliwatts{1.2};      ///< per active DSP48 at 300 MHz
  double bram_milliwatts{0.8};     ///< per active BRAM36
  double lut_microwatts{2.0};      ///< per LUT of active logic
  double ff_microwatts{0.5};       ///< per flip-flop

  /// Total device power with the given design placed and active.
  double estimate_watts(const ResourceEstimate& placed) const;

  /// Energy (joules) the design burns over `active` at full activity.
  double energy_joules(const ResourceEstimate& placed, Duration active) const;
};

/// Microjoules for one event of `latency` at `watts`.
double microjoules(double watts, Duration latency);

}  // namespace csdml::hls
