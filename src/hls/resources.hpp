// FPGA parts and per-kernel resource estimation.
//
// The paper targets the SmartSSD's Kintex KU15P and evaluates on the
// "similar" Alveo U200 (Virtex VU9P); both are modelled here so the
// engine can reject configurations (CU counts, unroll factors) that the
// real devices could not place — the resource constraint the paper's
// Limitations section highlights.
#pragma once

#include <cstdint>
#include <string>

#include "hls/kernel_spec.hpp"

namespace csdml::hls {

struct FpgaPart {
  std::string name;
  std::uint64_t luts{0};
  std::uint64_t flip_flops{0};
  std::uint64_t bram36{0};
  std::uint64_t dsp{0};
  std::uint64_t ddr_banks{0};

  /// SmartSSD compute element (Kintex UltraScale+ KU15P).
  static FpgaPart ku15p();
  /// Alveo U200 (Virtex UltraScale+ VU9P), the paper's test platform.
  static FpgaPart alveo_u200();
};

struct ResourceEstimate {
  std::uint64_t luts{0};
  std::uint64_t flip_flops{0};
  std::uint64_t bram36{0};
  std::uint64_t dsp{0};

  ResourceEstimate& operator+=(const ResourceEstimate& other);
  /// Scales all counts, e.g. for multiple compute units of one kernel.
  friend ResourceEstimate operator*(ResourceEstimate est, std::uint64_t copies);

  bool fits(const FpgaPart& part) const;
  /// Largest utilisation fraction across resource classes.
  double utilization(const FpgaPart& part) const;
};

/// Estimates the post-synthesis footprint of one compute unit of `kernel`.
ResourceEstimate estimate_resources(const KernelSpec& kernel);

}  // namespace csdml::hls
