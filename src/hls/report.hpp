// Vitis-style synthesis reports.
//
// `v++` emits per-kernel reports (loop II, latency, resource estimates);
// developers tune pragmas against them. This generator renders the same
// information from a KernelSpec + cost model so the simulated toolchain's
// decisions are as inspectable as the real one's.
#pragma once

#include <string>

#include "hls/cost_model.hpp"
#include "hls/resources.hpp"

namespace csdml::hls {

/// Full text report for one kernel: timing summary, loop table (trip
/// count, pragmas, achieved II, limiting factor, cycles), AXI transfer
/// table, and the resource estimate against a part.
std::string synthesis_report(const KernelSpec& kernel, const HlsCostModel& model,
                             const FpgaPart& part);

/// One-line summary, e.g. for logs:
/// "kernel_gates: 363 cycles (1.210 us), II=10 [ports], 208 DSP".
std::string summary_line(const KernelSpec& kernel, const HlsCostModel& model);

}  // namespace csdml::hls
