// The HLS scheduling cost model: KernelSpec -> cycles -> microseconds.
//
// Substitutes for Vitis hardware emulation (see DESIGN.md). The rules it
// implements are the ones every HLS user budgets with:
//   * unpipelined loop:  trip × (Σ op latencies + memory cycles + overhead)
//   * pipelined loop:    depth + (trip - 1) × II
//   * achieved II =      max(target II, port-limited II, dependence II)
//   * UNROLL divides trip count and multiplies per-iteration work/accesses
//   * ARRAY_PARTITION complete lifts the port limit (registers)
//   * DATAFLOW overlaps loop regions (and AXI with compute):
//     kernel time = max stage
//   * AXI transfers pay a fixed setup latency plus one beat per bus word,
//     stretched by a contention factor when masters share a DDR bank.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "hls/kernel_spec.hpp"
#include "hls/op_latency.hpp"

namespace csdml::hls {

struct AxiConfig {
  Cycles setup_latency{Cycles{40}};  ///< address phase + DDR access
  std::uint32_t bytes_per_beat{64};  ///< 512-bit AXI data bus
  double beats_per_cycle{1.0};
};

struct LoopReport {
  std::string name;
  Cycles cycles;
  std::uint64_t achieved_ii{0};  ///< 0 for unpipelined loops
  Cycles pipeline_depth;
  std::string limiting_factor;   ///< "target", "ports", "dependence", "-"
};

struct KernelReport {
  std::string name;
  Cycles total;
  Cycles compute;                ///< loop cycles (after dataflow overlap)
  Cycles axi;                    ///< transfer cycles
  std::vector<LoopReport> loops;

  Duration duration(Frequency clock) const { return clock.duration_of(total); }
};

class HlsCostModel {
 public:
  HlsCostModel(OpLatencyTable ops, AxiConfig axi, Frequency clock);

  /// Convenience: the defaults the paper's platform implies (UltraScale,
  /// 300 MHz kernel clock, 512-bit AXI).
  static HlsCostModel ultrascale_default();

  const Frequency& clock() const { return clock_; }
  const OpLatencyTable& ops() const { return ops_; }

  LoopReport analyze_loop(const LoopSpec& loop) const;
  Cycles analyze_transfer(const AxiTransferSpec& transfer) const;
  KernelReport analyze(const KernelSpec& kernel) const;

 private:
  OpLatencyTable ops_;
  AxiConfig axi_;
  Frequency clock_;
};

}  // namespace csdml::hls
