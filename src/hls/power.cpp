#include "hls/power.hpp"

#include "common/error.hpp"

namespace csdml::hls {

double PowerModel::estimate_watts(const ResourceEstimate& placed) const {
  return static_watts +
         static_cast<double>(placed.dsp) * dsp_milliwatts * 1e-3 +
         static_cast<double>(placed.bram36) * bram_milliwatts * 1e-3 +
         static_cast<double>(placed.luts) * lut_microwatts * 1e-6 +
         static_cast<double>(placed.flip_flops) * ff_microwatts * 1e-6;
}

double PowerModel::energy_joules(const ResourceEstimate& placed,
                                 Duration active) const {
  CSDML_REQUIRE(active.picos >= 0, "negative active time");
  return estimate_watts(placed) * (static_cast<double>(active.picos) * 1e-12);
}

double microjoules(double watts, Duration latency) {
  CSDML_REQUIRE(watts >= 0.0, "negative power");
  return watts * (static_cast<double>(latency.picos) * 1e-12) * 1e6;
}

}  // namespace csdml::hls
