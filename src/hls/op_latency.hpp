// Per-operation latency table for the HLS cost model.
//
// Real Vitis HLS schedules each RTL operator with a device- and
// clock-dependent latency; these defaults follow the characteristic values
// Vitis reports for UltraScale parts around 300 MHz: single-cycle integer
// add/compare, few-cycle DSP multiplies, multi-cycle floating-point cores,
// and long dividers/exponentials. The table is injectable so tests and
// ablations can explore other operating points.
#pragma once

#include <array>
#include <cstddef>

#include "common/units.hpp"

namespace csdml::hls {

enum class OpKind : std::size_t {
  IntAdd = 0,   // LUT adder
  IntMul,       // DSP48 multiply
  IntDiv,       // sequential divider
  IntCmp,
  Shift,
  Select,       // mux
  FloatAdd,
  FloatMul,
  FloatDiv,
  FloatExp,     // exp() core (CORDIC/poly)
  kCount
};

const char* op_name(OpKind kind);

class OpLatencyTable {
 public:
  /// Latencies representative of Vitis HLS on UltraScale at 300 MHz.
  static OpLatencyTable vitis_ultrascale_300mhz();

  Cycles latency(OpKind kind) const {
    return latencies_[static_cast<std::size_t>(kind)];
  }
  void set_latency(OpKind kind, Cycles cycles) {
    latencies_[static_cast<std::size_t>(kind)] = cycles;
  }

  /// True when the op consumes a DSP slice.
  static bool uses_dsp(OpKind kind);

 private:
  std::array<Cycles, static_cast<std::size_t>(OpKind::kCount)> latencies_{};
};

}  // namespace csdml::hls
