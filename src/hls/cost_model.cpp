#include "hls/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace csdml::hls {

HlsCostModel::HlsCostModel(OpLatencyTable ops, AxiConfig axi, Frequency clock)
    : ops_(ops), axi_(axi), clock_(clock) {}

HlsCostModel HlsCostModel::ultrascale_default() {
  return HlsCostModel(OpLatencyTable::vitis_ultrascale_300mhz(), AxiConfig{},
                      Frequency::megahertz(300.0));
}

namespace {

constexpr std::uint64_t kLoopIterationOverhead = 2;  // index update + exit test

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) { return (a + b - 1) / b; }

}  // namespace

LoopReport HlsCostModel::analyze_loop(const LoopSpec& loop) const {
  CSDML_REQUIRE(loop.trip_count > 0, "loop with zero trip count");
  CSDML_REQUIRE(loop.pragmas.unroll >= 1, "unroll factor must be >= 1");
  CSDML_REQUIRE(loop.pragmas.target_ii >= 1, "target II must be >= 1");

  LoopReport report;
  report.name = loop.name;

  const auto unroll = static_cast<std::uint64_t>(loop.pragmas.unroll);
  const std::uint64_t effective_trips = ceil_div(loop.trip_count, unroll);

  // Memory accesses per (unrolled) iteration and the ports serving them.
  const std::uint64_t accesses =
      static_cast<std::uint64_t>(loop.buffer_accesses) * unroll;
  const bool registers = loop.binding == BufferBinding::Registers ||
                         loop.pragmas.array_partition_complete;
  const std::uint64_t ports = registers
                                  ? std::max<std::uint64_t>(accesses, 1)
                                  : std::max<std::uint64_t>(loop.memory_ports, 1);
  const std::uint64_t memory_cycles =
      accesses == 0 ? 0 : ceil_div(accesses, ports);

  // Critical-path depth: one traversal of each distinct op kind in the body
  // (parallel instances of the same op share the stage), plus a cycle per
  // serialized memory group.
  Cycles depth{0};
  for (const LoopOp& op : loop.body_ops) {
    if (op.count > 0) depth += ops_.latency(op.kind);
  }
  depth += Cycles{memory_cycles};
  if (depth.count == 0) depth = Cycles{1};
  report.pipeline_depth = depth;

  if (loop.pragmas.pipeline) {
    std::uint64_t ii = static_cast<std::uint64_t>(loop.pragmas.target_ii);
    report.limiting_factor = "target";
    if (memory_cycles > ii) {
      ii = memory_cycles;
      report.limiting_factor = "ports";
    }
    if (loop.carried_dependency.has_value()) {
      const std::uint64_t dep = ops_.latency(*loop.carried_dependency).count;
      if (dep > ii) {
        ii = dep;
        report.limiting_factor = "dependence";
      }
    }
    report.achieved_ii = ii;
    report.cycles = Cycles{depth.count + (effective_trips - 1) * ii};
  } else {
    // Sequential schedule: every op occurrence executes in turn.
    std::uint64_t body = 0;
    for (const LoopOp& op : loop.body_ops) {
      body += static_cast<std::uint64_t>(op.count) * unroll *
              ops_.latency(op.kind).count;
    }
    body += memory_cycles;
    report.achieved_ii = 0;
    report.limiting_factor = "-";
    report.cycles = Cycles{effective_trips * (body + kLoopIterationOverhead)};
  }
  return report;
}

Cycles HlsCostModel::analyze_transfer(const AxiTransferSpec& transfer) const {
  CSDML_REQUIRE(transfer.contention >= 1.0, "contention factor must be >= 1");
  const std::uint64_t beats =
      ceil_div(transfer.bytes.count, axi_.bytes_per_beat);
  const double beat_cycles =
      static_cast<double>(beats) / axi_.beats_per_cycle * transfer.contention;
  return Cycles{axi_.setup_latency.count +
                static_cast<std::uint64_t>(std::llround(beat_cycles))};
}

KernelReport HlsCostModel::analyze(const KernelSpec& kernel) const {
  KernelReport report;
  report.name = kernel.name;

  Cycles sum{0};
  Cycles longest{0};
  for (const LoopSpec& loop : kernel.loops) {
    LoopReport lr = analyze_loop(loop);
    sum += lr.cycles;
    longest = std::max(longest, lr.cycles);
    report.loops.push_back(std::move(lr));
  }
  report.compute = kernel.dataflow ? longest : sum;

  Cycles axi{0};
  for (const AxiTransferSpec& transfer : kernel.transfers) {
    axi += analyze_transfer(transfer);
  }
  report.axi = axi;
  // DATAFLOW also overlaps the AXI stages with the compute stages.
  report.total = kernel.dataflow ? std::max(report.compute, report.axi)
                                 : report.compute + report.axi;
  return report;
}

}  // namespace csdml::hls
