#include "hls/report.hpp"

#include <iomanip>
#include <sstream>

#include "common/table.hpp"

namespace csdml::hls {

namespace {

std::string pragma_string(const PragmaSet& pragmas) {
  std::string out;
  if (pragmas.pipeline) {
    out += "PIPELINE II=" + std::to_string(pragmas.target_ii);
  }
  if (pragmas.unroll > 1) {
    if (!out.empty()) out += " ";
    out += "UNROLL=" + std::to_string(pragmas.unroll);
  }
  if (pragmas.array_partition_complete) {
    if (!out.empty()) out += " ";
    out += "ARRAY_PARTITION";
  }
  return out.empty() ? "-" : out;
}

}  // namespace

std::string synthesis_report(const KernelSpec& kernel, const HlsCostModel& model,
                             const FpgaPart& part) {
  const KernelReport report = model.analyze(kernel);
  const ResourceEstimate resources = estimate_resources(kernel);
  const Frequency clock = model.clock();

  std::ostringstream out;
  out << "== Synthesis report: " << kernel.name << " ==\n";
  out << "target: " << part.name << " @ " << clock.mhz() << " MHz"
      << (kernel.dataflow ? "   [DATAFLOW]" : "") << "\n\n";

  out << "timing: " << report.total.count << " cycles  ("
      << std::fixed << std::setprecision(5)
      << report.duration(clock).as_microseconds() << " us)   compute "
      << report.compute.count << " + axi " << report.axi.count
      << (kernel.dataflow ? " (overlapped)" : "") << "\n\n";

  if (!kernel.loops.empty()) {
    TextTable loops({"loop", "trip", "pragmas", "II", "limited_by", "depth",
                     "cycles"});
    for (std::size_t i = 0; i < kernel.loops.size(); ++i) {
      const LoopSpec& spec = kernel.loops[i];
      const LoopReport& lr = report.loops[i];
      loops.add_row({spec.name, std::to_string(spec.trip_count),
                     pragma_string(spec.pragmas),
                     lr.achieved_ii == 0 ? "-" : std::to_string(lr.achieved_ii),
                     lr.limiting_factor,
                     std::to_string(lr.pipeline_depth.count),
                     std::to_string(lr.cycles.count)});
    }
    out << loops.to_string() << '\n';
  }

  if (!kernel.transfers.empty()) {
    TextTable transfers({"axi transfer", "bytes", "cycles"});
    for (const AxiTransferSpec& transfer : kernel.transfers) {
      transfers.add_row({transfer.name, std::to_string(transfer.bytes.count),
                         std::to_string(model.analyze_transfer(transfer).count)});
    }
    out << transfers.to_string() << '\n';
  }

  TextTable util({"resource", "used", "available", "util%"});
  const auto row = [&](const char* name, std::uint64_t used,
                       std::uint64_t available) {
    util.add_row({name, std::to_string(used), std::to_string(available),
                  TextTable::num(available > 0
                                     ? 100.0 * static_cast<double>(used) /
                                           static_cast<double>(available)
                                     : 0.0,
                                 2)});
  };
  row("LUT", resources.luts, part.luts);
  row("FF", resources.flip_flops, part.flip_flops);
  row("BRAM36", resources.bram36, part.bram36);
  row("DSP", resources.dsp, part.dsp);
  out << util.to_string();
  return out.str();
}

std::string summary_line(const KernelSpec& kernel, const HlsCostModel& model) {
  const KernelReport report = model.analyze(kernel);
  const ResourceEstimate resources = estimate_resources(kernel);
  std::ostringstream out;
  out << kernel.name << ": " << report.total.count << " cycles ("
      << std::fixed << std::setprecision(3)
      << report.duration(model.clock()).as_microseconds() << " us)";
  if (!report.loops.empty() && report.loops.front().achieved_ii > 0) {
    out << ", II=" << report.loops.front().achieved_ii << " ["
        << report.loops.front().limiting_factor << "]";
  }
  out << ", " << resources.dsp << " DSP";
  return out.str();
}

}  // namespace csdml::hls
