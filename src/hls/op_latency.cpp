#include "hls/op_latency.hpp"

#include "common/error.hpp"

namespace csdml::hls {

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::IntAdd: return "int_add";
    case OpKind::IntMul: return "int_mul";
    case OpKind::IntDiv: return "int_div";
    case OpKind::IntCmp: return "int_cmp";
    case OpKind::Shift: return "shift";
    case OpKind::Select: return "select";
    case OpKind::FloatAdd: return "fadd";
    case OpKind::FloatMul: return "fmul";
    case OpKind::FloatDiv: return "fdiv";
    case OpKind::FloatExp: return "fexp";
    case OpKind::kCount: break;
  }
  throw PreconditionError("invalid op kind");
}

OpLatencyTable OpLatencyTable::vitis_ultrascale_300mhz() {
  OpLatencyTable table;
  table.set_latency(OpKind::IntAdd, Cycles{1});
  table.set_latency(OpKind::IntMul, Cycles{3});
  table.set_latency(OpKind::IntDiv, Cycles{18});
  table.set_latency(OpKind::IntCmp, Cycles{1});
  table.set_latency(OpKind::Shift, Cycles{1});
  table.set_latency(OpKind::Select, Cycles{1});
  table.set_latency(OpKind::FloatAdd, Cycles{7});
  table.set_latency(OpKind::FloatMul, Cycles{4});
  // Medium-latency (DSP-assisted) single-precision divider configuration.
  table.set_latency(OpKind::FloatDiv, Cycles{8});
  table.set_latency(OpKind::FloatExp, Cycles{22});
  return table;
}

bool OpLatencyTable::uses_dsp(OpKind kind) {
  switch (kind) {
    case OpKind::IntMul:
    case OpKind::FloatAdd:
    case OpKind::FloatMul:
      return true;
    default:
      return false;
  }
}

}  // namespace csdml::hls
