// CPU and GPU baselines for Table I of the paper.
//
// The paper measures the per-item forward-pass latency of the same LSTM on
// an Intel Xeon (TensorFlow, CPU) and an NVIDIA A100 (TensorFlow, GPU):
//
//     CPU 991.57750 us  (95% CI 217.46576 - 1765.68923)
//     GPU 741.35336 us  (95% CI 394.45317 - 1088.25355)
//
// We do not have that hardware (see DESIGN.md), so the baselines pair the
// *functional* forward pass (shared with the offline model) with an
// explicit latency decomposition of where host time goes for a 7.4 K-
// parameter model — which is *not* arithmetic (the math is microseconds at
// most) but framework overhead:
//
//   CPU:  per-op framework dispatch (TF executor) x ~12 ops per LSTM step,
//         the raw arithmetic, a shared system-load factor (the paper's CI
//         spans 8x, so run-to-run load dominates), and rare preemption.
//   GPU:  per-op kernel-launch overhead x ~12 launches, host<->device
//         transfers of x_t and the state readback, a stream sync, and a
//         narrower load factor (the paper's GPU CI spans ~2.8x).
//
// The decomposition makes the paper's core claim mechanical: a per-item
// GPU pass costs hundreds of microseconds of launch/transfer overhead the
// in-fabric pipeline simply does not have.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "nn/lstm.hpp"

namespace csdml::baselines {

struct HostLatencyConfig {
  /// Operations dispatched per LSTM timestep (4 matmul pairs + elementwise).
  std::uint32_t ops_per_item{12};
  /// Per-op overhead: lognormal around `op_overhead_us` with `op_sigma`.
  double op_overhead_us{0.0};
  double op_sigma{0.0};
  /// Fixed per-item costs (transfers, sync) in microseconds.
  double fixed_overhead_us{0.0};
  /// Effective arithmetic throughput for the raw math.
  double gflops{1.0};
  /// Shared run-to-run load factor: lognormal with unit mean, `load_sigma`.
  double load_sigma{0.0};
  /// Preemption: probability and exponential mean (microseconds).
  double preempt_probability{0.0};
  double preempt_mean_us{0.0};
  /// Package/board power drawn while serving this workload (used by the
  /// energy comparison; a per-item LSTM barely loads either device, so
  /// these sit well below TDP but far above an FPGA shell).
  double active_watts{0.0};

  /// Xeon Silver-class CPU running a TF graph, calibrated to Table I.
  static HostLatencyConfig xeon_cpu();
  /// A100-class GPU with per-launch overheads, calibrated to Table I.
  static HostLatencyConfig a100_gpu();
};

/// Floating-point operations in one LSTM timestep of this model.
double flops_per_item(const nn::LstmConfig& config);

/// A host-side deployment of the classifier with modelled latency.
class HostBaseline {
 public:
  HostBaseline(std::string name, const nn::LstmConfig& model_config,
               const nn::LstmParams& params, HostLatencyConfig latency);

  const std::string& name() const { return name_; }

  /// Functional forward pass (identical math to the offline model).
  /// Accepts any contiguous token view, matching the engine's infer —
  /// required for the fallback path, which serves ring-buffer windows.
  double infer(nn::TokenSpan sequence) const;
  int predict(nn::TokenSpan sequence) const;

  /// One sampled per-item forward-pass latency.
  Duration sample_item_latency(Rng& rng) const;

  /// `n` independent per-item latency samples in microseconds
  /// (the Table I measurement procedure).
  std::vector<double> measure_item_latencies(std::size_t n, Rng& rng) const;

  /// Deterministic (jitter-free) latency to classify a batch of `batch`
  /// windows of `length` items each. Batching amortizes the per-op
  /// dispatch/launch overhead across the whole batch — the regime where
  /// GPUs excel — while the arithmetic term scales with batch size.
  Duration batch_window_latency(std::size_t batch, std::size_t length) const;

 private:
  std::string name_;
  nn::LstmClassifier model_;
  HostLatencyConfig latency_;
};

}  // namespace csdml::baselines
