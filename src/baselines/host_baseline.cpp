#include "baselines/host_baseline.hpp"

#include <cmath>

#include "common/error.hpp"

namespace csdml::baselines {

HostLatencyConfig HostLatencyConfig::xeon_cpu() {
  HostLatencyConfig config;
  config.ops_per_item = 12;
  config.op_overhead_us = 72.0;  // TF executor dispatch on a loaded server
  config.op_sigma = 0.35;
  config.fixed_overhead_us = 40.0;  // session + feed/fetch bookkeeping
  config.gflops = 2.0;              // single-core effective
  config.load_sigma = 0.90;         // the paper's CPU CI spans ~8x
  config.preempt_probability = 0.04;
  config.preempt_mean_us = 900.0;
  config.active_watts = 70.0;  // Xeon Silver 4114 package under load (TDP 85 W)
  return config;
}

HostLatencyConfig HostLatencyConfig::a100_gpu() {
  HostLatencyConfig config;
  config.ops_per_item = 12;
  config.op_overhead_us = 42.0;  // kernel launch + CUDA driver path
  config.op_sigma = 0.20;
  config.fixed_overhead_us = 190.0;  // H2D x_t, D2H h_t, stream sync
  config.gflops = 1000.0;            // tiny kernels barely load the SMs
  config.load_sigma = 0.42;          // the paper's GPU CI spans ~2.8x
  config.preempt_probability = 0.01;
  config.preempt_mean_us = 400.0;
  config.active_watts = 90.0;  // A100 board mostly idle on 7.4K-param kernels
  return config;
}

double flops_per_item(const nn::LstmConfig& config) {
  const double embed = static_cast<double>(config.embed_dim);
  const double hidden = static_cast<double>(config.hidden_dim);
  // 4 gates x (embed + hidden) MACs x 2 flops, plus elementwise updates.
  return 4.0 * (embed + hidden) * hidden * 2.0 + 10.0 * hidden;
}

HostBaseline::HostBaseline(std::string name, const nn::LstmConfig& model_config,
                           const nn::LstmParams& params, HostLatencyConfig latency)
    : name_(std::move(name)), model_(model_config, params), latency_(latency) {
  CSDML_REQUIRE(latency_.ops_per_item > 0, "ops_per_item must be positive");
  CSDML_REQUIRE(latency_.gflops > 0.0, "gflops must be positive");
}

double HostBaseline::infer(nn::TokenSpan sequence) const {
  return model_.forward(sequence, nullptr);
}

int HostBaseline::predict(nn::TokenSpan sequence) const {
  return model_.predict(sequence);
}

Duration HostBaseline::sample_item_latency(Rng& rng) const {
  // Per-op dispatch overheads (independent lognormals with mean
  // op_overhead_us: mu = ln(mean) - sigma^2/2).
  double total_us = 0.0;
  if (latency_.op_overhead_us > 0.0) {
    const double mu =
        std::log(latency_.op_overhead_us) - 0.5 * latency_.op_sigma * latency_.op_sigma;
    for (std::uint32_t i = 0; i < latency_.ops_per_item; ++i) {
      total_us += rng.lognormal(mu, latency_.op_sigma);
    }
  }
  total_us += latency_.fixed_overhead_us;
  // Raw arithmetic.
  total_us += flops_per_item(model_.config()) / (latency_.gflops * 1e3);

  // Shared run-to-run load factor (unit mean).
  if (latency_.load_sigma > 0.0) {
    const double mu = -0.5 * latency_.load_sigma * latency_.load_sigma;
    total_us *= rng.lognormal(mu, latency_.load_sigma);
  }
  // Rare preemption spike.
  if (latency_.preempt_probability > 0.0 && rng.chance(latency_.preempt_probability)) {
    // Exponential via inverse transform.
    double u = rng.uniform();
    if (u <= 0.0) u = 1e-12;
    total_us += -latency_.preempt_mean_us * std::log(u);
  }
  return Duration::microseconds(total_us);
}

Duration HostBaseline::batch_window_latency(std::size_t batch,
                                            std::size_t length) const {
  CSDML_REQUIRE(batch > 0 && length > 0, "batch/length must be positive");
  // Per timestep the framework still dispatches ops_per_item kernels, but
  // each kernel now covers the whole batch; arithmetic scales with batch.
  const double per_step_us =
      static_cast<double>(latency_.ops_per_item) * latency_.op_overhead_us +
      static_cast<double>(batch) * flops_per_item(model_.config()) /
          (latency_.gflops * 1e3);
  const double total_us =
      static_cast<double>(length) * per_step_us + latency_.fixed_overhead_us;
  return Duration::microseconds(total_us);
}

std::vector<double> HostBaseline::measure_item_latencies(std::size_t n,
                                                         Rng& rng) const {
  CSDML_REQUIRE(n > 0, "need at least one sample");
  std::vector<double> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back(sample_item_latency(rng).as_microseconds());
  }
  return samples;
}

}  // namespace csdml::baselines
