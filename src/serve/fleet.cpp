#include "serve/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/functional.hpp"
#include "obs/metrics.hpp"

namespace csdml::serve {

namespace {

/// splitmix64 finalizer — the ring and pid hashes only need avalanche,
/// not a keyed stream.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

csd::SmartSsdConfig board_ssd_config(std::size_t index) {
  csd::SmartSsdConfig config;
  config.label = "board" + std::to_string(index);
  return config;
}

}  // namespace

BoardFleet::Board::Board(const nn::LstmConfig& model,
                         const nn::LstmParams& params,
                         const FleetConfig& config, std::size_t index)
    : board(board_ssd_config(index)),
      device(board),
      engine(device, model, params, config.engine) {
  // Attached after engine construction so the init-time weight staging is
  // never hit by ambient faults — only steady-state classification is.
  if (config.fault_rate > 0.0) {
    faults::FaultConfig ambient;
    ambient.seed = mix(config.seed ^ (index + 1) * 0x7fb5d329728ea185ULL);
    ambient.xrt_launch_failure_probability = config.fault_rate;
    ambient_plan.emplace(ambient);
    board.set_fault_plan(&*ambient_plan);
  }
}

BoardFleet::BoardFleet(const nn::LstmConfig& model,
                       const nn::LstmParams& params, FleetConfig config,
                       VerdictSink sink)
    : config_(std::move(config)),
      model_(model),
      sink_(std::move(sink)),
      params_(params) {
  CSDML_REQUIRE(config_.boards > 0, "fleet: need at least one board");
  CSDML_REQUIRE(config_.vnodes > 0, "fleet: need at least one vnode per board");
  CSDML_REQUIRE(sink_ != nullptr, "fleet: verdict sink required");

  if (config_.telemetry.enabled) {
    alerts_ = std::make_unique<obs::AlertEngine>();
    for (const obs::AlertRule& rule : config_.telemetry.rules) {
      alerts_->add_rule(rule);
    }
    if (config_.telemetry.drift) {
      alerts_->enable_drift(*config_.telemetry.drift);
    }
  }

  boards_.reserve(config_.boards);
  for (std::size_t k = 0; k < config_.boards; ++k) {
    auto board = std::make_unique<Board>(model, params, config_, k);
    ServeConfig serve_config = config_.serve;
    serve_config.metrics_prefix = "fleet.b" + std::to_string(k);
    serve_config.board_label = board->board.label();
    board->slo = obs::board_slo(serve_config.metrics_prefix, config_.slo);
    // Stamp the board index onto every verdict before it reaches the
    // shared sink, so consumers can attribute classifications across a
    // failover (the scenario scorer keys on this).
    board->pipeline = std::make_unique<ServingPipeline>(
        board->engine, std::move(serve_config),
        [this, k](const Verdict& verdict) {
          Verdict stamped = verdict;
          stamped.board = static_cast<std::uint32_t>(k);
          // Every served probability feeds the drift monitor, so model-
          // quality decay is watched fleet-wide, not per board.
          if (alerts_) alerts_->observe_score(verdict.probability);
          sink_(stamped);
        });
    boards_.push_back(std::move(board));
  }

  ring_.reserve(config_.boards * config_.vnodes);
  for (std::size_t k = 0; k < config_.boards; ++k) {
    for (std::size_t v = 0; v < config_.vnodes; ++v) {
      ring_.emplace_back(mix(config_.seed ^ (k * 0x100000001b3ULL + v + 1)), k);
    }
  }
  std::sort(ring_.begin(), ring_.end());

  // Golden windows: the canary-parity batch and the recovery probe both
  // classify these, so they are fixed at construction (seeded).
  Rng golden_rng = Rng(config_.seed).fork("fleet.golden");
  const std::size_t window_length = config_.serve.detector.window_length;
  golden_.reserve(std::max<std::size_t>(config_.canary_windows, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(config_.canary_windows, 1);
       ++i) {
    nn::Sequence window(window_length);
    for (nn::TokenId& token : window) {
      token = static_cast<nn::TokenId>(
          golden_rng.next() % static_cast<std::uint64_t>(model_.vocab_size));
    }
    golden_.push_back(std::move(window));
  }

  obs::registry().set_gauge("fleet.boards", static_cast<double>(boards_.size()));
  publish_fleet_gauges();

  if (config_.telemetry.enabled) {
    std::vector<obs::SampleSpec> specs;
    for (std::size_t k = 0; k < boards_.size(); ++k) {
      for (obs::SampleSpec& spec :
           obs::board_sample_specs("fleet.b" + std::to_string(k))) {
        specs.push_back(std::move(spec));
      }
    }
    obs::CollectorConfig collector_config;
    collector_config.tsdb = config_.telemetry.tsdb;
    collector_config.clock = config_.telemetry.clock;
    collector_config.start_thread = config_.telemetry.collector_thread;
    collector_ = std::make_unique<obs::TelemetryCollector>(
        std::move(collector_config), std::move(specs), alerts_.get());
  }
}

BoardFleet::~BoardFleet() { stop(); }

void BoardFleet::ingest(detect::ProcessId process, nn::TokenId token) {
  const std::uint64_t count =
      ingests_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.health_check_interval != 0 &&
      count % config_.health_check_interval == 0) {
    check_health();
  }
  {
    // Shared-locked across the push: a failover (exclusive) can never
    // export a pid's state while one of its tokens is mid-ingest.
    std::shared_lock<std::shared_mutex> lock(route_mutex_);
    const auto it = routing_.find(process);
    if (it != routing_.end()) {
      boards_[it->second]->pipeline->ingest(process, token);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(route_mutex_);
  const auto [it, inserted] = routing_.try_emplace(process, std::size_t{0});
  if (inserted) it->second = place(process);
  boards_[it->second]->pipeline->ingest(process, token);
}

void BoardFleet::forget(detect::ProcessId process) {
  std::unique_lock<std::shared_mutex> lock(route_mutex_);
  const auto it = routing_.find(process);
  if (it == routing_.end()) {
    obs::registry().add_counter("fleet.forget_unknown");
    return;
  }
  const std::size_t board = it->second;
  routing_.erase(it);
  boards_[board]->pipeline->forget(process);
}

void BoardFleet::flush() {
  for (const std::unique_ptr<Board>& board : boards_) {
    board->pipeline->flush();
  }
}

void BoardFleet::stop() {
  // Collector first: once pipelines stop, sampling their metrics is
  // pointless (and the alert engine must not drain boards mid-teardown).
  if (collector_) collector_->stop();
  for (const std::unique_ptr<Board>& board : boards_) {
    board->pipeline->stop();
  }
}

std::size_t BoardFleet::board_of(detect::ProcessId process) const {
  std::shared_lock<std::shared_mutex> lock(route_mutex_);
  const auto it = routing_.find(process);
  if (it != routing_.end()) return it->second;
  return place(process);
}

bool BoardFleet::board_healthy(std::size_t board) const {
  CSDML_REQUIRE(board < boards_.size(), "fleet: board index out of range");
  return boards_[board]->admitted.load(std::memory_order_acquire) &&
         boards_[board]->engine.healthy();
}

std::size_t BoardFleet::boards_admitted() const {
  std::size_t admitted = 0;
  for (const std::unique_ptr<Board>& board : boards_) {
    if (board->admitted.load(std::memory_order_acquire)) ++admitted;
  }
  return admitted;
}

void BoardFleet::kill_board(std::size_t board) {
  CSDML_REQUIRE(board < boards_.size(), "fleet: board index out of range");
  Board& b = *boards_[board];
  // The device lock keeps the plan swap out from under an in-flight batch
  // (the coalescer holds the same lock across infer_batch).
  const auto device_lock = b.engine.lock_device();
  b.board.set_fault_plan(nullptr);
  b.kill_plan.emplace(
      faults::lethal_launch_config(mix(config_.seed ^ 0xdead) ^ board));
  b.board.set_fault_plan(&*b.kill_plan);
  obs::registry().add_counter("fleet.kills");
}

void BoardFleet::revive_board(std::size_t board) {
  CSDML_REQUIRE(board < boards_.size(), "fleet: board index out of range");
  Board& b = *boards_[board];
  const auto device_lock = b.engine.lock_device();
  b.board.set_fault_plan(b.ambient_plan ? &*b.ambient_plan : nullptr);
  b.kill_plan.reset();
  obs::registry().add_counter("fleet.revives");
}

void BoardFleet::check_health() {
  // One sweep at a time; a concurrent ingest that loses the race just
  // skips — the next interval tick retries.
  if (!health_mutex_.try_lock()) return;
  const std::lock_guard<std::mutex> sweep(health_mutex_, std::adopt_lock);
  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  const bool alert_gate = alerts_ != nullptr && config_.telemetry.alerts_gate_health;
  for (std::size_t k = 0; k < boards_.size(); ++k) {
    Board& board = *boards_[k];
    if (board.admitted.load(std::memory_order_acquire)) {
      const obs::HealthReport report =
          obs::evaluate_health(snapshot, board.engine.healthy(), board.slo);
      // Alert state feeds the drain decision alongside the SLO burn: a
      // latched critical alert naming this board drains it even while the
      // instantaneous burn-rate verdict still reads healthy.
      bool drain = report.verdict == obs::HealthVerdict::Unhealthy;
      if (!drain && alert_gate && alerts_->board_alerted(static_cast<int>(k))) {
        drain = true;
        obs::registry().add_counter("fleet.alert_drains");
      }
      if (drain) {
        failover(k);
        // A lone board cannot drain — failover re-admits it on the spot —
        // so its latch would otherwise stick even after the fault clears
        // (revive_board only detaches the plan). Probe it in place: while
        // the fault persists the probe fails and deferrals continue; once
        // it clears the board resumes serving at the next sweep.
        if (board.admitted.load(std::memory_order_acquire) &&
            !board.engine.healthy() && probe(board)) {
          obs::registry().add_counter("fleet.recovered_in_place");
        }
      }
    } else if (alert_gate && alerts_->board_alerted(static_cast<int>(k))) {
      // Readmission waits for the alert to clear through its hysteresis
      // window, so a flapping board cannot bounce back into the ring.
      obs::registry().add_counter("fleet.readmit_held_by_alert");
    } else if (probe(board)) {
      readmit(k);
    }
  }
  publish_fleet_gauges();
}

std::size_t BoardFleet::place(detect::ProcessId process) const {
  const std::uint64_t point = mix(config_.seed ^ 0x517cc1b727220a95ULL ^
                                  static_cast<std::uint64_t>(process));
  const auto it = std::lower_bound(ring_.begin(), ring_.end(),
                                   std::make_pair(point, std::size_t{0}));
  const std::size_t start =
      static_cast<std::size_t>(it - ring_.begin()) % ring_.size();
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const std::size_t board = ring_[(start + i) % ring_.size()].second;
    if (boards_[board]->admitted.load(std::memory_order_acquire)) return board;
  }
  // Nobody admitted: park on the ring owner — its pipeline defers (never
  // drops) until a board recovers.
  return ring_[start].second;
}

void BoardFleet::failover(std::size_t board) {
  Board& sick = *boards_[board];
  std::unique_lock<std::shared_mutex> route_lock(route_mutex_);
  if (!sick.admitted.exchange(false, std::memory_order_acq_rel)) return;

  bool survivor = false;
  for (std::size_t k = 0; k < boards_.size(); ++k) {
    if (k != board && boards_[k]->admitted.load(std::memory_order_acquire)) {
      survivor = true;
      break;
    }
  }
  if (!survivor) {
    // Last board standing: nowhere to migrate, so it stays in the ring
    // and rides the deferral path until it (or a peer) recovers.
    sick.admitted.store(true, std::memory_order_release);
    return;
  }

  // Ingest is blocked on route_mutex_, so after the flush the board is
  // quiescent: every enqueued window has a verdict or a deferral, and the
  // shard maps hold the complete migratable state.
  sick.pipeline->flush();
  const std::vector<ServingPipeline::ProcessSnapshot> snapshots =
      sick.pipeline->export_processes();
  for (const ServingPipeline::ProcessSnapshot& snapshot : snapshots) {
    const std::size_t dest = place(snapshot.process);
    boards_[dest]->pipeline->import_process(snapshot);
    routing_[snapshot.process] = dest;
    if (snapshot.deferred_pending) {
      migrated_pending_.fetch_add(1, std::memory_order_relaxed);
      obs::registry().add_counter("fleet.migrated_pending");
    }
  }
  migrations_.fetch_add(snapshots.size(), std::memory_order_relaxed);
  failovers_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().add_counter("fleet.failovers");
  obs::registry().add_counter("fleet.migrations", snapshots.size());
}

bool BoardFleet::probe(Board& board) {
  obs::registry().add_counter("fleet.probes");
  board.engine.restore_health();
  try {
    const nn::Sequence& window = golden_.front();
    (void)board.engine.infer(nn::TokenSpan(window.data(), window.size()));
  } catch (const faults::CsdUnavailableError&) {
    return false;
  }
  return board.engine.healthy();
}

void BoardFleet::readmit(std::size_t board) {
  Board& b = *boards_[board];
  {
    // A rollout may have happened while the board was out of the ring;
    // it must serve the fleet-current version before taking traffic.
    const std::lock_guard<std::mutex> rollout_lock(rollout_mutex_);
    const std::uint64_t version = version_.load(std::memory_order_relaxed);
    if (b.weight_version != version) {
      b.engine.update_weights(params_);
      b.weight_version = version;
    }
  }
  b.admitted.store(true, std::memory_order_release);
  readmissions_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().add_counter("fleet.readmissions");
}

bool BoardFleet::golden_parity(kernels::CsdLstmEngine& engine,
                               const nn::LstmParams& params) const {
  // Reference datapath built exactly the way the engine builds its live
  // one for the configured level, so parity is bit-exact, not tolerance-
  // based.
  const bool fixed =
      config_.engine.level == kernels::OptimizationLevel::FixedPoint;
  std::optional<kernels::FixedDatapath> fixed_path;
  std::optional<kernels::FloatDatapath> float_path;
  if (fixed) {
    fixed_path.emplace(model_, params, config_.engine.fixed_scale);
  } else {
    float_path.emplace(model_, params);
  }
  for (const nn::Sequence& window : golden_) {
    const nn::TokenSpan span(window.data(), window.size());
    const double expect = fixed ? fixed_path->infer(span) : float_path->infer(span);
    try {
      const kernels::InferenceResult got = engine.infer(span);
      if (got.degraded || got.probability != expect) return false;
    } catch (const faults::CsdUnavailableError&) {
      // An unhealthy canary cannot vouch for the new weights.
      return false;
    }
  }
  return true;
}

RolloutReport BoardFleet::update_weights(const nn::LstmParams& params) {
  const std::lock_guard<std::mutex> rollout_lock(rollout_mutex_);
  RolloutReport report;
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::size_t> targets;
  for (std::size_t k = 0; k < boards_.size(); ++k) {
    if (boards_[k]->admitted.load(std::memory_order_acquire)) {
      targets.push_back(k);
    }
  }
  report.version = version_.load(std::memory_order_relaxed);
  if (targets.empty()) return report;

  // Canary gate: the first admitted board flips and must reproduce the
  // golden batch bit-exactly before any other board moves.
  Board& canary = *boards_[targets.front()];
  const auto canary_start = std::chrono::steady_clock::now();
  canary.engine.update_weights(params);
  report.canary_ok = golden_parity(canary.engine, params);
  report.canary_us = elapsed_us(canary_start);
  report.per_board_us.push_back(report.canary_us);
  if (!report.canary_ok) {
    // Roll the canary back: the whole fleet keeps serving the old version.
    canary.engine.update_weights(params_);
    obs::registry().add_counter("fleet.rollout_canary_failures");
    report.total_us = elapsed_us(start);
    return report;
  }

  for (std::size_t i = 1; i < targets.size(); ++i) {
    const auto flip_start = std::chrono::steady_clock::now();
    boards_[targets[i]]->engine.update_weights(params);
    report.per_board_us.push_back(elapsed_us(flip_start));
  }

  params_ = params;
  const std::uint64_t version =
      version_.fetch_add(1, std::memory_order_relaxed) + 1;
  for (const std::size_t k : targets) boards_[k]->weight_version = version;
  rollouts_.fetch_add(1, std::memory_order_relaxed);
  report.ok = true;
  report.version = version;
  report.total_us = elapsed_us(start);
  obs::registry().add_counter("fleet.rollouts");
  obs::registry().set_gauge("fleet.weight_version",
                            static_cast<double>(version));
  return report;
}

std::uint64_t BoardFleet::weight_version() const {
  return version_.load(std::memory_order_relaxed);
}

BoardFleet::Stats BoardFleet::stats() const {
  Stats stats;
  for (const std::unique_ptr<Board>& board : boards_) {
    const ServingPipeline::Stats p = board->pipeline->stats();
    stats.totals.ingested += p.ingested;
    stats.totals.enqueued += p.enqueued;
    stats.totals.shed += p.shed;
    stats.totals.deferred += p.deferred;
    stats.totals.verdicts += p.verdicts;
    stats.totals.alerts += p.alerts;
    stats.totals.batches += p.batches;
    stats.totals.migrated_in += p.migrated_in;
    stats.totals.migrated_resolved += p.migrated_resolved;
    if (board->admitted.load(std::memory_order_acquire)) {
      ++stats.boards_admitted;
    }
  }
  stats.failovers = failovers_.load(std::memory_order_relaxed);
  stats.migrations = migrations_.load(std::memory_order_relaxed);
  stats.migrated_pending = migrated_pending_.load(std::memory_order_relaxed);
  stats.readmissions = readmissions_.load(std::memory_order_relaxed);
  stats.rollouts = rollouts_.load(std::memory_order_relaxed);
  stats.weight_version = version_.load(std::memory_order_relaxed);
  return stats;
}

ServingPipeline::Stats BoardFleet::board_stats(std::size_t board) const {
  CSDML_REQUIRE(board < boards_.size(), "fleet: board index out of range");
  return boards_[board]->pipeline->stats();
}

kernels::CsdLstmEngine& BoardFleet::engine(std::size_t board) {
  CSDML_REQUIRE(board < boards_.size(), "fleet: board index out of range");
  return boards_[board]->engine;
}

void BoardFleet::publish_fleet_gauges() {
  obs::registry().set_gauge("fleet.boards_admitted",
                            static_cast<double>(boards_admitted()));
  obs::registry().set_gauge(
      "fleet.weight_version",
      static_cast<double>(version_.load(std::memory_order_relaxed)));
}

}  // namespace csdml::serve
