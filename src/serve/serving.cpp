#include "serve/serving.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"
#include "faults/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/span_trace.hpp"

namespace csdml::serve {

namespace {

/// Micro-batch sizes are small powers of two by construction.
const std::vector<double>& coalesce_bounds() {
  static const std::vector<double> bounds{1, 2, 4, 8, 16, 32, 64, 128};
  return bounds;
}

}  // namespace

ServingPipeline::ServingPipeline(kernels::CsdLstmEngine& engine,
                                 ServeConfig config, VerdictSink sink)
    : engine_(engine), config_(std::move(config)), sink_(std::move(sink)) {
  CSDML_REQUIRE(config_.shards > 0, "serve: shard count must be positive");
  CSDML_REQUIRE(config_.coalesce_max > 0,
                "serve: coalesce_max must be positive");
  CSDML_REQUIRE(sink_ != nullptr, "serve: verdict sink required");
  CSDML_REQUIRE(config_.detector.window_length > 0,
                "serve: window must be positive");
  CSDML_REQUIRE(config_.detector.hop > 0, "serve: hop must be positive");
  CSDML_REQUIRE(config_.detector.consecutive_alerts > 0,
                "serve: consecutive_alerts must be positive");
  CSDML_REQUIRE(!config_.metrics_prefix.empty(),
                "serve: metrics prefix must be non-empty");
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_.ring_capacity));
  }
  coalescer_ = std::thread([this] { coalescer_main(); });
}

ServingPipeline::~ServingPipeline() { stop(); }

void ServingPipeline::ingest(detect::ProcessId process, nn::TokenId token) {
  CSDML_REQUIRE(token >= 0 && token < engine_.model_config().vocab_size,
                "API-call token outside model vocabulary");
  ingested_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_of(process);
  bool pushed = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const bool new_process = !shard.processes.contains(process);
    ProcessState& state = shard.processes[process];
    if (new_process) state.window = detect::TokenRing(config_.detector.window_length);
    state.window.push(token);
    ++state.calls_seen;
    ++state.calls_since_eval;

    if (!state.window.full()) return;
    // Same due-window rule as the synchronous detector: the call that
    // first fills the window, then every `hop` calls.
    const bool first_full_window =
        state.calls_seen == config_.detector.window_length;
    if (!first_full_window && state.calls_since_eval < config_.detector.hop) {
      return;
    }

    const nn::TokenSpan view = state.window.view();
    Request request;
    request.process = process;
    request.call_index = state.calls_seen;
    request.window.assign(view.begin(), view.end());
    request.enqueued_at = Clock::now();
    // flush() must never observe a completed request it has not yet seen
    // enqueued, so outstanding_ rises before the push and rolls back on a
    // full ring.
    outstanding_.fetch_add(1, std::memory_order_seq_cst);
    if (shard.ring.try_push(std::move(request))) {
      state.calls_since_eval = 0;
      enqueued_.fetch_add(1, std::memory_order_relaxed);
      pending_.fetch_add(1, std::memory_order_release);
      pushed = true;
    } else {
      // Backpressure: shed to the deferral path, never drop. Priming the
      // hop counter re-arms the classification on this process's next
      // call, exactly like the CSD-unavailable deferral.
      outstanding_.fetch_sub(1, std::memory_order_seq_cst);
      state.calls_since_eval = config_.detector.hop;
      state.deferred_pending = true;
      shed_.fetch_add(1, std::memory_order_relaxed);
      obs::registry().add_counter(metric("shed"));
    }
  }
  if (pushed && sleeping_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> wake_lock(wake_mutex_);
    wake_cv_.notify_one();
  }
}

void ServingPipeline::forget(detect::ProcessId process) {
  Shard& shard = shard_of(process);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.processes.find(process);
  if (it == shard.processes.end()) {
    obs::registry().add_counter(metric("forget_unknown"));
    return;
  }
  if (it->second.deferred_pending) {
    obs::registry().add_counter(metric("forget_pending"));
  }
  shard.processes.erase(it);
  obs::registry().add_counter(metric("processes_forgotten"));
}

std::vector<ServingPipeline::ProcessSnapshot>
ServingPipeline::export_processes() {
  std::vector<ProcessSnapshot> snapshots;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto& [process, state] : shard->processes) {
      ProcessSnapshot snapshot;
      snapshot.process = process;
      const nn::TokenSpan view = state.window.view();
      snapshot.window.assign(view.begin(), view.end());
      snapshot.calls_seen = state.calls_seen;
      snapshot.calls_since_eval = state.calls_since_eval;
      snapshot.alert_streak = state.alert_streak;
      snapshot.deferred_pending = state.deferred_pending;
      snapshots.push_back(std::move(snapshot));
    }
    shard->processes.clear();
  }
  obs::registry().add_counter(metric("processes_exported"), snapshots.size());
  return snapshots;
}

void ServingPipeline::import_process(const ProcessSnapshot& snapshot) {
  Shard& shard = shard_of(snapshot.process);
  std::lock_guard<std::mutex> lock(shard.mutex);
  ProcessState& state = shard.processes[snapshot.process];
  state.window = detect::TokenRing(config_.detector.window_length);
  state.window.warm(nn::TokenSpan(snapshot.window.data(),
                                  snapshot.window.size()));
  state.calls_seen = snapshot.calls_seen;
  // A carried deferral re-arms immediately: the next call is due. The
  // migrated hop phase is otherwise preserved so the destination board
  // classifies on the same call indices the source board would have.
  state.calls_since_eval = snapshot.deferred_pending
                               ? config_.detector.hop
                               : snapshot.calls_since_eval;
  state.alert_streak = snapshot.alert_streak;
  state.deferred_pending = snapshot.deferred_pending;
  state.migrated_pending = snapshot.deferred_pending;
  migrated_in_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().add_counter(metric("migrated_in"));
}

void ServingPipeline::flush() {
  while (outstanding_.load(std::memory_order_seq_cst) != 0) {
    {
      std::lock_guard<std::mutex> wake_lock(wake_mutex_);
      wake_cv_.notify_one();
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void ServingPipeline::stop() {
  if (stopping_.exchange(true)) {
    if (coalescer_.joinable()) coalescer_.join();
    return;
  }
  {
    std::lock_guard<std::mutex> wake_lock(wake_mutex_);
    wake_cv_.notify_one();
  }
  if (coalescer_.joinable()) coalescer_.join();
}

ServingPipeline::Stats ServingPipeline::stats() const {
  Stats stats;
  stats.ingested = ingested_.load(std::memory_order_relaxed);
  stats.enqueued = enqueued_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.deferred = deferred_.load(std::memory_order_relaxed);
  stats.verdicts = verdicts_.load(std::memory_order_relaxed);
  stats.alerts = alerts_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.migrated_in = migrated_in_.load(std::memory_order_relaxed);
  stats.migrated_resolved = migrated_resolved_.load(std::memory_order_relaxed);
  return stats;
}

void ServingPipeline::coalescer_main() {
  std::vector<Request> batch;
  batch.reserve(config_.coalesce_max);
  while (true) {
    batch.clear();
    gather(batch);
    if (!batch.empty()) {
      process_batch(batch);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Drained and stopping: nothing can arrive after the rings emptied
      // under `stopping_` (producers may still shed, which needs no us).
      if (pending_.load(std::memory_order_acquire) == 0) return;
      continue;
    }
    // Idle: publish the intent to sleep, re-check, then wait with a bound
    // so a wake racing the flag costs one tick instead of a hang.
    std::unique_lock<std::mutex> wake_lock(wake_mutex_);
    sleeping_.store(true, std::memory_order_release);
    if (pending_.load(std::memory_order_acquire) == 0 &&
        !stopping_.load(std::memory_order_acquire)) {
      wake_cv_.wait_for(wake_lock, std::chrono::milliseconds(1));
    }
    sleeping_.store(false, std::memory_order_release);
  }
}

void ServingPipeline::gather(std::vector<Request>& batch) {
  Clock::time_point deadline{};
  std::size_t cursor = 0;
  for (;;) {
    bool drained = false;
    for (std::size_t i = 0; i < shards_.size() && batch.size() < config_.coalesce_max;
         ++i) {
      Shard& shard = *shards_[(cursor + i) % shards_.size()];
      Request request;
      while (batch.size() < config_.coalesce_max &&
             shard.ring.try_pop(request)) {
        pending_.fetch_sub(1, std::memory_order_acq_rel);
        if (batch.empty()) deadline = Clock::now() + config_.coalesce_deadline;
        batch.push_back(std::move(request));
        drained = true;
      }
    }
    cursor = (cursor + 1) % shards_.size();
    if (batch.size() >= config_.coalesce_max) return;
    if (batch.empty()) return;
    // Partial batch: dispatch once the deadline passes (or immediately on
    // shutdown — no reason to ripen a batch nobody is feeding).
    if (stopping_.load(std::memory_order_acquire)) return;
    if (Clock::now() >= deadline) return;
    if (!drained) std::this_thread::yield();
  }
}

void ServingPipeline::process_batch(std::vector<Request>& batch) {
  std::vector<nn::Sequence> sequences;
  sequences.reserve(batch.size());
  for (Request& request : batch) sequences.push_back(std::move(request.window));

  // The serving layer frames the whole batch — coalesced count included —
  // as one trace; the engine's own spans nest inside because the device
  // lock is held (recursively) across the infer_batch call.
  kernels::CsdLstmEngine::BatchResult result;
  bool unavailable = false;
  {
    auto device_lock = engine_.lock_device();
    obs::SpanTrace& spans = engine_.span_trace();
    const bool traced = spans.enabled() && !spans.in_trace();
    obs::SpanId root = 0;
    if (traced) {
      spans.begin_trace();
      root = spans.begin_span(metric("batch"), engine_.device_now());
      spans.tag(root, "coalesced", std::to_string(batch.size()));
      if (!config_.board_label.empty()) {
        spans.tag(root, "board", config_.board_label);
      }
    }
    try {
      result = engine_.infer_batch(sequences);
    } catch (const faults::CsdUnavailableError&) {
      unavailable = true;
    }
    if (traced) {
      if (unavailable) spans.tag(root, "deferred", "1");
      spans.end_span(root, engine_.device_now());
      spans.end_trace();
    }
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().observe(metric("coalesce_batch"),
                          static_cast<double>(batch.size()),
                          coalesce_bounds());
  if (unavailable) {
    defer_failed(batch);
  } else {
    complete(batch, result);
  }
  publish_queue_depths();
}

void ServingPipeline::complete(
    std::vector<Request>& batch,
    const kernels::CsdLstmEngine::BatchResult& result) {
  obs::MetricsRegistry& metrics = obs::registry();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& request = batch[i];
    const double probability = result.probabilities[i];
    bool alert = false;
    {
      Shard& shard = shard_of(request.process);
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.processes.find(request.process);
      // A process forgotten mid-flight still gets its verdict, but there
      // is no streak left to debounce against, so it can never alert.
      if (it != shard.processes.end()) {
        ProcessState& state = it->second;
        state.deferred_pending = false;
        if (state.migrated_pending) {
          // The deferral this process carried across a board failover has
          // now produced its verdict — the migrated-then-resolved leg of
          // the fleet conservation law.
          state.migrated_pending = false;
          migrated_resolved_.fetch_add(1, std::memory_order_relaxed);
          metrics.add_counter(metric("migrated_resolved"));
        }
        if (probability >= config_.detector.threshold) {
          ++state.alert_streak;
        } else {
          state.alert_streak = 0;
        }
        alert = state.alert_streak >= config_.detector.consecutive_alerts;
        if (!alert && state.alert_streak > 0) {
          metrics.add_counter(metric("debounce_suppressions"));
        }
      }
    }

    Verdict verdict;
    verdict.process = request.process;
    verdict.call_index = request.call_index;
    verdict.probability = probability;
    verdict.alert = alert;
    verdict.degraded = result.degraded;
    metrics.add_counter(metric("verdicts"));
    if (alert) {
      alerts_.fetch_add(1, std::memory_order_relaxed);
      metrics.add_counter(metric("alerts"));
    }
    metrics.observe(
        metric("ingest_to_verdict_us"),
        std::chrono::duration<double, std::micro>(Clock::now() -
                                                  request.enqueued_at)
            .count());
    // Sink runs outside every shard lock; only after it returns does the
    // request count as completed, so flush() covers sink delivery too.
    sink_(verdict);
    verdicts_.fetch_add(1, std::memory_order_relaxed);
    outstanding_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void ServingPipeline::defer_failed(std::vector<Request>& batch) {
  obs::MetricsRegistry& metrics = obs::registry();
  for (const Request& request : batch) {
    Shard& shard = shard_of(request.process);
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.processes.find(request.process);
      if (it != shard.processes.end()) {
        // Re-arm for retry on the next call, the same never-drop contract
        // as StreamingDetector's CsdUnavailable deferral.
        it->second.calls_since_eval = config_.detector.hop;
        it->second.deferred_pending = true;
      }
    }
    deferred_.fetch_add(1, std::memory_order_relaxed);
    metrics.add_counter(metric("deferred"));
    outstanding_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void ServingPipeline::publish_queue_depths() {
  obs::MetricsRegistry& metrics = obs::registry();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    metrics.set_gauge(metric("shard") + std::to_string(i) + ".queue_depth",
                      static_cast<double>(shards_[i]->ring.size()));
  }
}

}  // namespace csdml::serve
