// Sharded asynchronous serving pipeline for the streaming detector.
//
// The paper's deployment story has the CSD absorbing "traffic from millions
// of users": per-call synchronous classification (StreamingDetector) makes
// every ingestion thread wait out a full engine round-trip. This layer
// decouples the two halves:
//
//   ingestion threads ──> shard (mutex + per-process windows)
//                           │ due window (copied)
//                           ▼
//                         SPSC ring (bounded, lock-free)
//                           │ drained round-robin
//                           ▼
//                     coalescer thread ──> micro-batch ──> infer_batch
//                           │ verdicts, in enqueue order per process
//                           ▼
//                        VerdictSink
//
// Process state is sharded by pid so ingestion threads rarely contend;
// each shard hands due windows to the single coalescer thread through a
// bounded SPSC ring (the shard mutex serialises producers, the coalescer
// is the only consumer). The coalescer gathers up to `coalesce_max`
// windows — waiting at most `coalesce_deadline` past the first one — and
// feeds them to the engine as one batch, so the engine-side cost
// (availability probe, span framing, pool dispatch) amortises across the
// batch. A full ring is backpressure, not loss: the due classification is
// deferred exactly like the CSD-unavailable path (retried on the process's
// next call) and counted in `serve.shed`.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/spsc_ring.hpp"
#include "detect/detector.hpp"
#include "kernels/engine.hpp"

namespace csdml::serve {

struct ServeConfig {
  /// Process-state shards; ingestion threads hash (pid mod shards) so
  /// distinct processes land on distinct locks.
  std::size_t shards{4};
  /// Per-shard request ring capacity (rounded up to a power of two). When
  /// the ring is full the due classification is shed to the deferral path.
  std::size_t ring_capacity{256};
  /// Micro-batch cap: the coalescer never hands the engine more windows
  /// than this in one infer_batch call.
  std::size_t coalesce_max{32};
  /// How long the coalescer waits past the first gathered window for the
  /// batch to fill before dispatching a partial one.
  std::chrono::microseconds coalesce_deadline{200};
  /// Window/hop/threshold/debounce semantics, identical to the
  /// synchronous StreamingDetector.
  detect::DetectorConfig detector{};
  /// Name prefix for every obs counter/gauge/histogram/span this pipeline
  /// emits. A fleet gives each board its own prefix (e.g. "fleet.b2") so
  /// per-board series stay separable; the default keeps the original
  /// single-board "serve.*" names.
  std::string metrics_prefix{"serve"};
  /// Human-readable board identity tagged onto batch spans (empty = none).
  std::string board_label{};
};

/// One classification outcome, delivered to the sink in per-process call
/// order (ring FIFO + single coalescer preserve enqueue order).
struct Verdict {
  detect::ProcessId process{0};
  /// Index (per process) of the API call that completed the window.
  std::uint64_t call_index{0};
  double probability{0.0};
  /// Over threshold for `consecutive_alerts` straight classifications.
  bool alert{false};
  /// Served by the host fallback while the CSD was unhealthy.
  bool degraded{false};
  /// Index of the board whose pipeline served this verdict. A standalone
  /// ServingPipeline leaves it 0; BoardFleet stamps it per board, so a
  /// sink can tell which side of a failover produced the classification.
  std::uint32_t board{0};
};

/// Invoked from the coalescer thread, outside any shard lock — a slow sink
/// backpressures the pipeline (rings fill, ingestion sheds) but never
/// deadlocks it.
using VerdictSink = std::function<void(const Verdict&)>;

class ServingPipeline {
 public:
  /// Starts the coalescer thread. The engine must outlive the pipeline;
  /// the sink is retained for the pipeline's lifetime.
  ServingPipeline(kernels::CsdLstmEngine& engine, ServeConfig config,
                  VerdictSink sink);
  ~ServingPipeline();  ///< stop()

  ServingPipeline(const ServingPipeline&) = delete;
  ServingPipeline& operator=(const ServingPipeline&) = delete;

  /// Feeds one API call of one process. Safe to call from any number of
  /// threads concurrently; the caller only ever touches its shard's mutex
  /// and ring — never the engine. Out-of-vocabulary tokens are rejected
  /// with PreconditionError, as in the synchronous detector.
  void ingest(detect::ProcessId process, nn::TokenId token);

  /// Forgets a terminated process (unknown ids are a no-op). A pending
  /// deferral dies with the process and is counted in
  /// `serve.forget_pending`; an in-flight window of the process still
  /// yields a verdict, with `alert` forced false (no streak to debounce
  /// against).
  void forget(detect::ProcessId process);

  /// Portable copy of one process's sliding-window state — everything a
  /// destination board needs to continue classifying where the source
  /// board left off (window tokens oldest→newest, hop phase, debounce
  /// streak, and whether a deferred classification is still owed).
  struct ProcessSnapshot {
    detect::ProcessId process{0};
    std::vector<nn::TokenId> window;
    std::uint64_t calls_seen{0};
    std::uint64_t calls_since_eval{0};
    std::size_t alert_streak{0};
    bool deferred_pending{false};
  };

  /// Drains every process's state out of the pipeline (the shard maps end
  /// up empty) for migration to other boards. Call only when quiescent for
  /// the migrating pids: flush() first, and no concurrent ingest — the
  /// fleet enforces this by holding its routing lock exclusively.
  std::vector<ProcessSnapshot> export_processes();

  /// Installs a migrated process (its TokenRing re-warmed from the
  /// snapshot). A carried `deferred_pending` re-arms the owed
  /// classification on the process's next call, and its eventual verdict
  /// is counted in `migrated_resolved` — the never-drop contract extended
  /// across board failover.
  void import_process(const ProcessSnapshot& snapshot);

  /// Blocks until every successfully enqueued window has either produced
  /// a verdict or been deferred. Does not stop the coalescer.
  void flush();

  /// Drains the rings, then joins the coalescer. Idempotent; the
  /// destructor calls it.
  void stop();

  /// Monotonic pipeline totals (relaxed reads; exact once flushed).
  struct Stats {
    std::uint64_t ingested{0};   ///< calls accepted by ingest()
    std::uint64_t enqueued{0};   ///< due windows pushed into a ring
    std::uint64_t shed{0};       ///< due windows deferred on a full ring
    std::uint64_t deferred{0};   ///< enqueued windows deferred (CSD down)
    std::uint64_t verdicts{0};   ///< windows that reached the sink
    std::uint64_t alerts{0};     ///< verdicts with alert set
    std::uint64_t batches{0};    ///< infer_batch calls issued
    std::uint64_t migrated_in{0};        ///< processes imported from other boards
    std::uint64_t migrated_resolved{0};  ///< carried deferrals that verdict'd here
  };
  Stats stats() const;

  const ServeConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// A due window, snapshotted at enqueue time (the live ring keeps
  /// sliding underneath, so the span cannot be handed over by reference).
  struct Request {
    detect::ProcessId process{0};
    std::uint64_t call_index{0};
    nn::Sequence window;
    Clock::time_point enqueued_at{};
  };

  /// Same sliding-window bookkeeping as StreamingDetector::ProcessState,
  /// owned by exactly one shard.
  struct ProcessState {
    detect::TokenRing window;
    std::uint64_t calls_seen{0};
    std::uint64_t calls_since_eval{0};
    std::size_t alert_streak{0};
    bool deferred_pending{false};
    /// Imported from another board with a deferral owed; cleared (and
    /// counted as resolved) by the first verdict delivered here.
    bool migrated_pending{false};
  };

  struct Shard {
    std::mutex mutex;  ///< process map + ring producer side
    std::unordered_map<detect::ProcessId, ProcessState> processes;
    SpscRing<Request> ring;

    explicit Shard(std::size_t ring_capacity) : ring(ring_capacity) {}
  };

  Shard& shard_of(detect::ProcessId process) {
    return *shards_[process % shards_.size()];
  }

  /// `<metrics_prefix>.<name>` — every obs series this pipeline emits.
  std::string metric(const char* name) const {
    return config_.metrics_prefix + '.' + name;
  }

  void coalescer_main();
  /// Drains rings round-robin into `batch` until coalesce_max, or until
  /// `coalesce_deadline` elapsed past the first gathered request.
  void gather(std::vector<Request>& batch);
  void process_batch(std::vector<Request>& batch);
  /// Successful batch: fold probabilities back into shard state (streaks,
  /// debounce) and deliver verdicts.
  void complete(std::vector<Request>& batch,
                const kernels::CsdLstmEngine::BatchResult& result);
  /// Failed batch (CSD unavailable, no fallback): re-arm every window's
  /// process for retry on its next call — deferred, never dropped.
  void defer_failed(std::vector<Request>& batch);
  void publish_queue_depths();

  kernels::CsdLstmEngine& engine_;
  ServeConfig config_;
  VerdictSink sink_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Requests sitting in rings, not yet gathered. The producer-side bump
  /// plus the `sleeping_` check below is the wake protocol; the bounded
  /// wait_for in the coalescer makes a lost race cost one tick, not a
  /// hang.
  std::atomic<std::uint64_t> pending_{0};
  /// Requests enqueued but not yet completed (verdict or deferral) —
  /// what flush() waits on.
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> sleeping_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;

  std::atomic<std::uint64_t> ingested_{0};
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deferred_{0};
  std::atomic<std::uint64_t> verdicts_{0};
  std::atomic<std::uint64_t> alerts_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> migrated_in_{0};
  std::atomic<std::uint64_t> migrated_resolved_{0};

  std::thread coalescer_;  ///< last member: started once everything above exists
};

}  // namespace csdml::serve
