// BoardFleet — scale-out serving across an array of simulated SmartSSDs.
//
// The paper deploys one SmartSSD per storage node; the data-center pitch
// only holds if inference scales out across a *fleet* of CSDs and survives
// a degraded board. This layer owns N independent board stacks (each its
// own SmartSSD + XRT device + CsdLstmEngine + fault plan + sharded
// ServingPipeline) and routes processes to boards with a consistent-hash
// ring, so every process's sliding token window stays board-local:
//
//   ingest(pid, token) ──ring──> board k ──pipeline──> verdicts
//                         │
//                         ├─ health sweep (every health_check_interval
//                         │  ingests): per-board SLO burn-rate verdict
//                         │  (obs::board_slo) + engine unhealthy latch
//                         ├─ failover: drain the sick board, rehash ONLY
//                         │  its pids to healthy boards, re-warm their
//                         │  TokenRing windows from exported snapshots —
//                         │  classifications are never dropped
//                         └─ recovery probes re-admit a healed board
//
// Conservation law, extended across failover (asserted by `csdml serve`
// and test_fleet): summed over boards,
//
//   enqueued == verdicts + deferred        and
//   migrated_pending == migrated_resolved
//
// i.e. every window that entered a ring either produced a verdict or was
// deferred, and every deferral carried across a board failover was later
// re-served on the destination board (the "migrated-then-resolved" leg).
//
// Weight rollout is coordinated: update_weights() flips boards one at a
// time through the engine's epoch-swap path, gated by a canary — the first
// board must reproduce a golden batch bit-exactly under the new weights
// before any other board flips — and stamped with a fleet-wide version
// counter, so a torn rollout can be detected (and a failed canary is
// rolled back, leaving the fleet serving the old version everywhere).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "csd/smartssd.hpp"
#include "faults/fault_plan.hpp"
#include "kernels/engine.hpp"
#include "obs/anomaly.hpp"
#include "obs/health.hpp"
#include "obs/timeseries.hpp"
#include "serve/serving.hpp"
#include "xrt/runtime.hpp"

namespace csdml::serve {

/// Fleet telemetry: the collector thread sampling per-board series into
/// the time-series store, and the alert engine evaluated on every tick.
/// Rules default to empty, so a fleet without explicit rules behaves —
/// verdict for verdict — exactly like one without telemetry (the scenario
/// golden digests depend on this).
struct FleetTelemetryConfig {
  bool enabled{true};
  /// When false the owner drives collector ticks explicitly (tests,
  /// `csdml top` frames) instead of running the background thread.
  bool collector_thread{true};
  obs::TsdbConfig tsdb{};
  /// Declarative alert rules; rules with `board >= 0` participate in the
  /// health sweep's drain/readmit decision (see alerts_gate_health).
  std::vector<obs::AlertRule> rules{};
  /// Enables verdict-score drift monitoring when set (scores stream in
  /// from every board's verdict sink).
  std::optional<obs::DriftConfig> drift{};
  /// Health sweeps drain a board with a latched critical alert and hold
  /// its readmission until the alert clears.
  bool alerts_gate_health{true};
  /// Injected timeline for deterministic tests; empty = steady clock.
  std::function<std::int64_t()> clock{};
};

struct FleetConfig {
  std::size_t boards{2};
  /// Virtual nodes per board on the consistent-hash ring; more points
  /// spread one board's pids more evenly over the survivors on failover.
  std::size_t vnodes{32};
  /// Ingests between health sweeps (0 = sweep only on explicit
  /// check_health() calls). Sweeps are cheap relative to a window
  /// classification, so a few hundred is a fine default.
  std::size_t health_check_interval{256};
  /// Seeds the hash ring, per-board fault streams, and golden windows.
  std::uint64_t seed{2024};
  /// Ambient per-board XRT launch-failure probability (0 = no plan).
  double fault_rate{0.0};
  /// Golden windows the rollout canary must reproduce bit-exactly.
  std::size_t canary_windows{4};
  kernels::EngineConfig engine{};
  /// Per-board pipeline settings; metrics_prefix/board_label are
  /// overridden per board ("fleet.b<k>" / "board<k>").
  ServeConfig serve{};
  /// SLO thresholds for the per-board burn-rate verdict; the latency
  /// histogram name is overridden per board (obs::board_slo).
  obs::SloConfig slo{};
  FleetTelemetryConfig telemetry{};
};

/// One coordinated weight rollout, as measured (bench_fleet reports the
/// pause numbers; tests assert the gate semantics).
struct RolloutReport {
  bool ok{false};         ///< every admitted board now serves `version`
  bool canary_ok{false};  ///< the golden batch matched under new weights
  std::uint64_t version{0};
  double canary_us{0.0};            ///< canary flip + golden-batch check
  double total_us{0.0};             ///< whole rollout wall time
  std::vector<double> per_board_us; ///< flip wall time, rollout order
};

class BoardFleet {
 public:
  /// Builds `config.boards` full board stacks sharing one model; every
  /// board starts healthy, admitted to the ring, at weight version 1.
  /// The sink is shared by all boards (same contract as ServingPipeline:
  /// invoked from coalescer threads, outside shard locks).
  BoardFleet(const nn::LstmConfig& model, const nn::LstmParams& params,
             FleetConfig config, VerdictSink sink);
  ~BoardFleet();  ///< stop()

  BoardFleet(const BoardFleet&) = delete;
  BoardFleet& operator=(const BoardFleet&) = delete;

  /// Feeds one API call. Thread-safe; routes via the sticky pid→board
  /// table (first contact places the pid on the ring over admitted
  /// boards) and triggers a health sweep every health_check_interval
  /// ingests.
  void ingest(detect::ProcessId process, nn::TokenId token);

  /// Forgets a terminated process on its current board.
  void forget(detect::ProcessId process);

  /// Blocks until every board's pipeline has drained (verdict or
  /// deferral for everything enqueued).
  void flush();

  /// Stops every board's coalescer. Idempotent; the destructor calls it.
  void stop();

  std::size_t board_count() const { return boards_.size(); }
  /// Current routing for a pid (its sticky assignment, or where the ring
  /// would place it if it has not been seen yet).
  std::size_t board_of(detect::ProcessId process) const;
  /// Admitted to the ring AND engine latch clear.
  bool board_healthy(std::size_t board) const;
  std::size_t boards_admitted() const;

  /// Deterministic failure drill: attaches a lethal launch-failure plan,
  /// so the board's next classification exhausts its retries and latches
  /// unhealthy; the following health sweep drains and rehashes it.
  void kill_board(std::size_t board);
  /// Detaches the kill plan (restoring any ambient plan); the next health
  /// sweep's recovery probe re-admits the board — after pushing the
  /// current weight version if a rollout happened while it was out.
  void revive_board(std::size_t board);

  /// One health sweep now: drain-and-rehash any admitted board whose SLO
  /// burn-rate verdict (or engine latch) is unhealthy, probe-and-readmit
  /// any drained board that recovered. A lone unhealthy board (nowhere to
  /// drain) is probed in place instead, so it resumes serving once its
  /// fault clears. Also runs automatically from ingest every
  /// health_check_interval calls.
  void check_health();

  /// Canary-gated coordinated rollout (see file header). Serialised;
  /// boards out of the ring are skipped and catch up at re-admission.
  RolloutReport update_weights(const nn::LstmParams& params);

  /// Fleet-wide weight image version (1 after construction).
  std::uint64_t weight_version() const;

  struct Stats {
    ServingPipeline::Stats totals;      ///< summed over boards
    std::uint64_t failovers{0};         ///< boards drained
    std::uint64_t migrations{0};        ///< pid moves between boards
    std::uint64_t migrated_pending{0};  ///< pids moved owing a deferral
    std::uint64_t readmissions{0};
    std::uint64_t rollouts{0};
    std::uint64_t weight_version{0};
    std::size_t boards_admitted{0};

    /// Nothing lost: every enqueued window produced a verdict or deferral.
    bool conservation_ok() const {
      return totals.enqueued == totals.verdicts + totals.deferred;
    }
    /// Every deferral carried across a failover was re-served.
    bool failover_resolved() const {
      return totals.migrated_resolved == migrated_pending;
    }
  };
  Stats stats() const;

  ServingPipeline::Stats board_stats(std::size_t board) const;
  kernels::CsdLstmEngine& engine(std::size_t board);

  /// Telemetry collector (null when telemetry is disabled). Owners in
  /// deterministic mode call telemetry()->tick() per frame.
  obs::TelemetryCollector* telemetry() { return collector_.get(); }
  /// Alert engine (null when telemetry is disabled).
  obs::AlertEngine* alert_engine() { return alerts_.get(); }
  const obs::AlertEngine* alert_engine() const { return alerts_.get(); }

  const FleetConfig& config() const { return config_; }

 private:
  struct Board {
    Board(const nn::LstmConfig& model, const nn::LstmParams& params,
          const FleetConfig& config, std::size_t index);

    csd::SmartSsd board;
    xrt::Device device;
    kernels::CsdLstmEngine engine;
    std::unique_ptr<ServingPipeline> pipeline;
    std::optional<faults::FaultPlan> ambient_plan;
    std::optional<faults::FaultPlan> kill_plan;
    obs::SloConfig slo;             ///< per-board latency series
    std::atomic<bool> admitted{true};
    std::uint64_t weight_version{1};  ///< guarded by rollout_mutex_
  };

  /// Ring placement over admitted boards (any caller; no routing lock
  /// needed — the ring is immutable after construction, only `admitted`
  /// flags change).
  std::size_t place(detect::ProcessId process) const;
  /// Drains `board`, rehashes only its pids, re-warms their windows on
  /// the destinations. Caller must NOT hold route_mutex_.
  void failover(std::size_t board);
  /// restore_health + one golden classification; true when the board came
  /// back healthy.
  bool probe(Board& board);
  void readmit(std::size_t board);
  /// Golden batch bit-exact under the engine's live datapath vs a
  /// freshly built reference for `params`.
  bool golden_parity(kernels::CsdLstmEngine& engine,
                     const nn::LstmParams& params) const;
  void publish_fleet_gauges();

  FleetConfig config_;
  nn::LstmConfig model_;
  VerdictSink sink_;
  /// Built before the boards so verdict sinks can feed scores to the
  /// drift monitor from the very first classification.
  std::unique_ptr<obs::AlertEngine> alerts_;
  std::vector<std::unique_ptr<Board>> boards_;
  /// Built last (samples the boards' metric prefixes); stopped first.
  std::unique_ptr<obs::TelemetryCollector> collector_;
  /// Sorted consistent-hash ring: (point, board index).
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
  std::vector<nn::Sequence> golden_;

  /// pid → board. Shared-locked across every ingest so a failover
  /// (exclusive) cannot migrate a pid out from under an in-flight push.
  mutable std::shared_mutex route_mutex_;
  std::unordered_map<detect::ProcessId, std::size_t> routing_;

  std::mutex health_mutex_;   ///< one sweep at a time (try-lock, no queue)
  std::mutex rollout_mutex_;  ///< serialises rollouts + params_/versions
  nn::LstmParams params_;     ///< fleet-current weights (rollback source)
  std::atomic<std::uint64_t> version_{1};

  std::atomic<std::uint64_t> ingests_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> migrated_pending_{0};
  std::atomic<std::uint64_t> readmissions_{0};
  std::atomic<std::uint64_t> rollouts_{0};
};

}  // namespace csdml::serve
